package vc

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ddemos/internal/crypto/group"
	"ddemos/internal/store"
	"ddemos/internal/wire"
)

// This file is the durable-runtime-state layer of a VC node. The paper's
// deployment keeps per-ballot protocol state in PostgreSQL so a crashed
// Vote Collector rejoins within the fault bound (§V); here the same role is
// played by a write-ahead log of ballot state transitions plus a periodic
// snapshot (both store.WAL-framed files in one data directory).
//
// Every externally visible promise is journaled before it is made: the
// endorsed code before the ENDORSEMENT reply, the pending binding and
// disclosed share before VOTE_P, the receipt before it is released to a
// waiter, the agreed vote set before it is returned. Records are *facts*
// (monotone transitions), so replay is order-independent and idempotent:
// applying a record the state already reflects is a no-op. That makes
// snapshot+log disagreement benign — a crash between snapshot rename and
// log truncation replays records the snapshot already covers — and lets
// call sites append outside the ballot locks.
//
// Record kinds (payload layout, big-endian; "bytes" = u32 length prefix):
//
//	endorsed:  kind u8 | serial u64 | code bytes
//	ucert:     kind u8 | serial u64 | cert
//	pending:   kind u8 | serial u64 | code bytes | part u8 | row u32 | cert
//	share:     kind u8 | serial u64 | index u32 | value bytes
//	voted:     kind u8 | serial u64 | code bytes | receipt bytes
//	vsc:       kind u8 | count u32 | { serial u64 | code bytes }*
const (
	recEndorsed byte = iota + 1
	recUCert
	recPending
	recShare
	recVoted
	recVSC
)

// Journal file names inside a node's data directory.
const (
	journalWALFile      = "wal"
	journalSnapshotFile = "snapshot"
)

// JournalOptions tunes a node's persistence layer.
type JournalOptions struct {
	// Fsync syncs the log before every ack instead of on the batched
	// cadence: per-transition durability against power loss (process
	// crashes never lose acked state either way, since records hit the OS
	// before the ack).
	Fsync bool
	// SyncEvery is the group-commit cadence when Fsync is off (default
	// 2ms, the same order as the transport batch flush window, so journal
	// syncs coalesce with message batches).
	SyncEvery time.Duration
	// SnapshotEvery triggers a snapshot + log truncation after this many
	// appended records (default 4096).
	SnapshotEvery int
}

func (o JournalOptions) withDefaults() JournalOptions {
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 4096
	}
	return o
}

// Journal is the WAL + snapshot pair backing one node's runtime state.
type Journal struct {
	dir  string
	opts JournalOptions
	// mu gates appends against snapshots: Snapshot holds it across
	// state-capture + snapshot-write + log-truncation, so no record can
	// land after the capture and vanish in the truncation. Appenders
	// therefore must never hold a ballot/shard/vsc lock while appending —
	// the state capture takes those.
	mu  sync.Mutex
	wal *store.WAL
}

// OpenJournal opens (creating if needed) the data directory and its log,
// truncating any torn tail left by a crash.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("vc: journal dir %s: %w", dir, err)
	}
	wal, err := store.OpenWAL(filepath.Join(dir, journalWALFile), store.WALOptions{
		SyncEvery:      opts.SyncEvery,
		SyncEachAppend: opts.Fsync,
	})
	if err != nil {
		return nil, err
	}
	return &Journal{dir: dir, opts: opts.withDefaults(), wal: wal}, nil
}

// Dir returns the journal's data directory.
func (j *Journal) Dir() string { return j.dir }

// Replay streams every persisted record — snapshot first, then the log —
// into fn.
func (j *Journal) Replay(fn func(payload []byte) error) error {
	if _, err := store.ReplayWAL(filepath.Join(j.dir, journalSnapshotFile), fn); err != nil {
		return err
	}
	_, err := store.ReplayWAL(filepath.Join(j.dir, journalWALFile), fn)
	return err
}

// Append logs records, reporting whether the log has grown past the
// snapshot threshold (the caller then runs Snapshot; a late or skipped
// snapshot costs replay time, never correctness).
func (j *Journal) Append(recs [][]byte) (snapshotDue bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.wal.AppendBatch(recs); err != nil {
		return false, err
	}
	return j.wal.Records() >= int64(j.opts.SnapshotEvery), nil
}

// Sync forces everything appended so far to stable storage.
func (j *Journal) Sync() error { return j.wal.Sync() }

// Snapshot atomically replaces the snapshot file with the records produced
// by state and truncates the log. Appends are blocked for the duration, so
// the capture covers every logged transition; a crash between the snapshot
// rename and the truncation merely replays records the snapshot already
// holds (harmless: application is idempotent).
func (j *Journal) Snapshot(state func() [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := store.WriteWALFile(filepath.Join(j.dir, journalSnapshotFile), state()); err != nil {
		return err
	}
	return j.wal.Reset()
}

// Close syncs and closes the journal.
func (j *Journal) Close() error { return j.wal.Close() }

// --- record encoding -------------------------------------------------------

func jAppendBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b))) //nolint:gosec // protocol-bounded
	return append(dst, b...)
}

func encEndorsed(serial uint64, code []byte) []byte {
	dst := append(make([]byte, 0, 16+len(code)), recEndorsed)
	dst = binary.BigEndian.AppendUint64(dst, serial)
	return jAppendBytes(dst, code)
}

func encUCert(serial uint64, cert *wire.UCert) []byte {
	dst := []byte{recUCert}
	dst = binary.BigEndian.AppendUint64(dst, serial)
	return append(dst, wire.MarshalUCert(cert)...)
}

func encPending(serial uint64, code []byte, part uint8, row int, cert *wire.UCert) []byte {
	dst := []byte{recPending}
	dst = binary.BigEndian.AppendUint64(dst, serial)
	dst = jAppendBytes(dst, code)
	dst = append(dst, part)
	dst = binary.BigEndian.AppendUint32(dst, uint32(row)) //nolint:gosec // row < m
	return append(dst, wire.MarshalUCert(cert)...)
}

func encShare(serial uint64, index uint32, value *big.Int) []byte {
	dst := []byte{recShare}
	dst = binary.BigEndian.AppendUint64(dst, serial)
	dst = binary.BigEndian.AppendUint32(dst, index)
	return jAppendBytes(dst, group.ScalarBytes(value))
}

func encVoted(serial uint64, code, receipt []byte) []byte {
	dst := []byte{recVoted}
	dst = binary.BigEndian.AppendUint64(dst, serial)
	dst = jAppendBytes(dst, code)
	return jAppendBytes(dst, receipt)
}

func encVSC(set []VotedBallot) []byte {
	dst := []byte{recVSC}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(set))) //nolint:gosec // protocol-bounded
	for _, vb := range set {
		dst = binary.BigEndian.AppendUint64(dst, vb.Serial)
		dst = jAppendBytes(dst, vb.Code)
	}
	return dst
}

// jdec is a cursor over one record payload.
type jdec struct {
	buf []byte
	bad bool
}

func (d *jdec) u8() byte {
	if d.bad || len(d.buf) < 1 {
		d.bad = true
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *jdec) u32() uint32 {
	if d.bad || len(d.buf) < 4 {
		d.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *jdec) u64() uint64 {
	if d.bad || len(d.buf) < 8 {
		d.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *jdec) bytes() []byte {
	n := d.u32()
	if d.bad || uint64(n) > uint64(len(d.buf)) {
		d.bad = true
		return nil
	}
	out := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return out
}

func (d *jdec) cert() *wire.UCert {
	if d.bad {
		return nil
	}
	u, rest, err := wire.UnmarshalUCert(d.buf)
	if err != nil {
		d.bad = true
		return nil
	}
	d.buf = rest
	return &u
}

// errBadRecord wraps journal decode failures (CRC passed but the payload
// does not parse: version skew or a foreign file).
var errBadRecord = errors.New("vc: malformed journal record")

// --- node recovery ---------------------------------------------------------

// Recover rebuilds the node's runtime ballot state from the snapshot and
// write-ahead log in dir (both may be absent on first boot) and attaches
// the journal so every later transition is logged there. It must be called
// after New and before Start. Recovery is idempotent: recovering the same
// directory twice yields an identical StateHash.
func (n *Node) Recover(dir string) error {
	return n.RecoverWithOptions(dir, JournalOptions{})
}

// RecoverWithOptions is Recover with explicit durability tuning.
func (n *Node) RecoverWithOptions(dir string, opts JournalOptions) error {
	j, err := OpenJournal(dir, opts)
	if err != nil {
		return err
	}
	if err := j.Replay(n.applyJournalRecord); err != nil {
		_ = j.Close()
		return err
	}
	n.finishRecovery()
	n.journal = j
	return nil
}

// applyJournalRecord applies one persisted transition. Application is
// idempotent and order-independent: every record is a monotone fact, so
// duplicates and stale records (snapshot+log overlap, interleaved append
// order across goroutines) are no-ops.
func (n *Node) applyJournalRecord(payload []byte) error {
	d := &jdec{buf: payload}
	kind := d.u8()
	if kind == recVSC {
		cnt := d.u32()
		if d.bad || uint64(cnt) > uint64(n.manifest.NumBallots) {
			return errBadRecord
		}
		set := make([]VotedBallot, 0, cnt)
		for i := uint32(0); i < cnt; i++ {
			set = append(set, VotedBallot{Serial: d.u64(), Code: d.bytes()})
		}
		if d.bad || len(d.buf) != 0 {
			return errBadRecord
		}
		n.vscMu.Lock()
		if !n.vscDone {
			n.vscDone = true
			n.vscResult = set
		}
		n.vscMu.Unlock()
		return nil
	}
	serial := d.u64()
	if d.bad || serial == 0 || serial > uint64(n.manifest.NumBallots) {
		return errBadRecord
	}
	st := n.state(serial)
	st.mu.Lock()
	defer st.mu.Unlock()
	switch kind {
	case recEndorsed:
		code := d.bytes()
		if d.bad {
			return errBadRecord
		}
		if st.endorsedCode == nil {
			st.endorsedCode = code
		}
	case recUCert:
		cert := d.cert()
		if d.bad || cert == nil {
			return errBadRecord
		}
		installCertLocked(st, cert.Code, cert)
	case recPending:
		code := d.bytes()
		part := d.u8()
		row := d.u32()
		cert := d.cert()
		if d.bad || cert == nil {
			return errBadRecord
		}
		installCertLocked(st, code, cert)
		st.part, st.row = part, int(row)
	case recShare:
		index := d.u32()
		value := d.bytes()
		if d.bad {
			return errBadRecord
		}
		v, err := group.DecodeScalar(value)
		if err != nil {
			return fmt.Errorf("%w: share value: %v", errBadRecord, err)
		}
		if st.shares == nil {
			st.shares = make(map[uint32]*big.Int, n.hv)
		}
		if _, ok := st.shares[index]; !ok {
			st.shares[index] = v
		}
		if index == uint32(n.self)+1 {
			st.sentVoteP = true
		}
	case recVoted:
		code := d.bytes()
		receipt := d.bytes()
		if d.bad {
			return errBadRecord
		}
		if st.usedCode == nil {
			st.usedCode = code
		}
		st.status = Voted
		if st.receipt == nil {
			st.receipt = receipt
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", errBadRecord, kind)
	}
	return nil
}

// installCertLocked raises a ballot to (at least) Pending under a known
// certificate. Caller holds st.mu. The certificate came from our own
// journal: it verified before it was logged, so it is not re-verified.
func installCertLocked(st *ballotState, code []byte, cert *wire.UCert) {
	if st.cert == nil {
		st.cert = cert
	}
	if st.usedCode == nil {
		st.usedCode = code
	}
	if st.status == NotVoted {
		st.status = Pending
	}
}

// finishRecovery reconstructs receipts for ballots whose journal holds a
// reconstruction-threshold share set but no voted record (a crash between
// the last share landing and the receipt record).
func (n *Node) finishRecovery() {
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		states := make(map[uint64]*ballotState, len(sh.ballots))
		for serial, st := range sh.ballots {
			states[serial] = st
		}
		sh.mu.Unlock()
		for serial, st := range states {
			st.mu.Lock()
			// The journal already holds the shares this derives from, so
			// the record and waiters (none at recovery) are dropped.
			n.maybeReconstructLocked(serial, st)
			st.mu.Unlock()
		}
	}
}

// --- journaling hooks ------------------------------------------------------

// journalAppend logs transition records (no-op without a journal). Must not
// be called while holding any ballot or shard lock: a snapshot triggered
// here serializes the whole state under those locks. Append errors are
// counted, not fatal — the node keeps serving from memory (DESIGN.md,
// "Durability and recovery").
func (n *Node) journalAppend(recs ...[]byte) {
	j := n.journal
	if j == nil || len(recs) == 0 {
		return
	}
	due, err := j.Append(recs)
	if err != nil {
		n.metrics.JournalErrors.Add(1)
		return
	}
	n.metrics.JournalRecords.Add(int64(len(recs)))
	if due && n.snapshotting.CompareAndSwap(false, true) {
		if err := j.Snapshot(n.serializeState); err != nil {
			n.metrics.JournalErrors.Add(1)
		} else {
			n.metrics.Snapshots.Add(1)
		}
		n.snapshotting.Store(false)
	}
}

// serializeState dumps the node's entire runtime state as journal records —
// the snapshot payload and the basis of StateHash. Deterministic: ballots
// ordered by serial, shares by index.
func (n *Node) serializeState() [][]byte {
	type entry struct {
		serial uint64
		st     *ballotState
	}
	var entries []entry
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		for serial, st := range sh.ballots {
			entries = append(entries, entry{serial, st})
		}
		sh.mu.Unlock()
	}
	sort.Slice(entries, func(i, k int) bool { return entries[i].serial < entries[k].serial })
	var out [][]byte
	for _, e := range entries {
		st := e.st
		st.mu.Lock()
		if st.endorsedCode != nil {
			out = append(out, encEndorsed(e.serial, st.endorsedCode))
		}
		if st.cert != nil {
			out = append(out, encPending(e.serial, st.usedCode, st.part, st.row, st.cert))
		}
		idxs := make([]uint32, 0, len(st.shares))
		for idx := range st.shares {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(i, k int) bool { return idxs[i] < idxs[k] })
		for _, idx := range idxs {
			out = append(out, encShare(e.serial, idx, st.shares[idx]))
		}
		if st.status == Voted {
			out = append(out, encVoted(e.serial, st.usedCode, st.receipt))
		}
		st.mu.Unlock()
	}
	n.vscMu.Lock()
	if n.vscDone {
		out = append(out, encVSC(n.vscResult))
	}
	n.vscMu.Unlock()
	return out
}

// StateHash digests the node's runtime ballot state. Two nodes (or one node
// before and after a recover cycle) with identical state hash identically —
// the acceptance check for recovery idempotence.
func (n *Node) StateHash() [32]byte {
	h := sha256.New()
	var lenBuf [4]byte
	for _, rec := range n.serializeState() {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(rec))) //nolint:gosec // record-sized
		h.Write(lenBuf[:])
		h.Write(rec)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
