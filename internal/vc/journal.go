package vc

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ddemos/internal/crypto/group"
	"ddemos/internal/store"
	"ddemos/internal/wire"
)

// This file is the durable-runtime-state layer of a VC node. The paper's
// deployment keeps per-ballot protocol state in PostgreSQL so a crashed
// Vote Collector rejoins within the fault bound (§V); here the same role is
// played by a write-ahead log of ballot state transitions plus a periodic
// snapshot (both store.WAL-framed files in one data directory).
//
// Every externally visible promise is journaled before it is made: the
// endorsed code before the ENDORSEMENT reply, the pending binding and
// disclosed share before VOTE_P, the receipt before it is released to a
// waiter, the agreed vote set before it is returned. Records are *facts*
// (monotone transitions), so replay is order-independent and idempotent:
// applying a record the state already reflects is a no-op. That makes
// snapshot+log disagreement benign — a crash between snapshot rename and
// log truncation replays records the snapshot already covers — and lets
// call sites append outside the ballot locks.
//
// Record kinds (payload layout, big-endian; "bytes" = u32 length prefix):
//
//	endorsed:  kind u8 | serial u64 | code bytes
//	ucert:     kind u8 | serial u64 | cert
//	pending:   kind u8 | serial u64 | code bytes | part u8 | row u32 | cert
//	share:     kind u8 | serial u64 | index u32 | value bytes
//	voted:     kind u8 | serial u64 | code bytes | receipt bytes
//	vsc:       kind u8 | count u32 | { serial u64 | code bytes }*
const (
	recEndorsed byte = iota + 1
	recUCert
	recPending
	recShare
	recVoted
	recVSC
)

// Journal file names inside a node's data directory.
const (
	journalWALFile      = "wal"
	journalSnapshotFile = "snapshot"
	journalFormatFile   = "FORMAT"
)

// AckPolicy selects what a node does when a journal append fails while an
// externally visible ack (ENDORSEMENT reply, receipt release, consensus
// result) depends on the record.
type AckPolicy uint8

// Ack policies.
const (
	// PolicyAvailable counts the error and keeps serving from memory —
	// availability over durability, today's default.
	PolicyAvailable AckPolicy = iota
	// PolicyStrict refuses the ack: no ENDORSEMENT reply and no receipt
	// leaves the node without a durable journal record backing it. The
	// safer election-day default when the journal is the system of record.
	PolicyStrict
)

// String implements fmt.Stringer.
func (p AckPolicy) String() string {
	if p == PolicyStrict {
		return "strict"
	}
	return "available"
}

// ParseAckPolicy parses the -journal-policy flag values.
func ParseAckPolicy(s string) (AckPolicy, error) {
	switch s {
	case "", "available":
		return PolicyAvailable, nil
	case "strict":
		return PolicyStrict, nil
	}
	return 0, fmt.Errorf("vc: unknown journal policy %q (want available or strict)", s)
}

// JournalOptions tunes a node's persistence layer.
type JournalOptions struct {
	// Fsync syncs the log before every ack instead of on the batched
	// cadence: per-transition durability against power loss (process
	// crashes never lose acked state either way, since records hit the OS
	// before the ack).
	Fsync bool
	// SyncEvery is the group-commit cadence when Fsync is off (default
	// 2ms, the same order as the transport batch flush window, so journal
	// syncs coalesce with message batches).
	SyncEvery time.Duration
	// SnapshotEvery, when > 0, overrides the adaptive cadence with a fixed
	// record-count trigger (the pre-pool behaviour; 0 = adaptive).
	SnapshotEvery int
	// SnapshotBytes is the adaptive-cadence byte trigger: snapshot once the
	// un-snapshotted log exceeds this many payload bytes (default 1 MiB).
	SnapshotBytes int64
	// TargetReplay is the adaptive-cadence replay budget: snapshot once the
	// estimated time to replay the un-snapshotted log (records × measured
	// per-record apply cost) exceeds it (default 200ms).
	TargetReplay time.Duration
	// Pool selects the sharded backend when > 1: that many WAL lanes hashed
	// by ballot serial, each with its own group-commit fsync loop and
	// copy-on-write snapshots (the runtime-state analogue of the paper's
	// Fig. 5a connection-pool sweep). <= 1 keeps the single-WAL engine.
	Pool int
	// Policy selects the journal-append-error ack policy.
	Policy AckPolicy
}

func (o JournalOptions) withDefaults() JournalOptions {
	if o.SnapshotBytes <= 0 {
		o.SnapshotBytes = 1 << 20
	}
	if o.TargetReplay <= 0 {
		o.TargetReplay = 200 * time.Millisecond
	}
	return o
}

// StateSource serializes one lane's share of a node's runtime state as
// journal records — the snapshot payload. lane is in [0, lanes); a single
// lane receives the whole state. Callers invoke it without holding any
// journal lock, so captures run concurrently with appends.
type StateSource func(lane, lanes int) [][]byte

// JournalBackend is the storage engine behind a node's runtime-state
// journal. Three implementations ship: Journal (the single-WAL engine),
// PooledJournal (sharded WAL lanes with concurrent snapshots), and
// MemJournal (in-memory, for tests). Records are opaque monotone facts:
// replay is order-independent and idempotent, which every backend relies on
// for snapshot/log overlap tolerance.
type JournalBackend interface {
	// Replay streams every persisted record — snapshots first, then the
	// logs — into fn. Backends measure the replay to calibrate the
	// adaptive snapshot cadence.
	Replay(fn func(payload []byte) error) error
	// Append durably logs records (lane routing, if any, is by the ballot
	// serial embedded in each record).
	Append(recs [][]byte) error
	// MaybeSnapshot captures lanes whose un-snapshotted debt crossed the
	// cadence threshold, invoking done once per completed (nil) or failed
	// attempt. Pooled lanes capture copy-on-write in the background, so
	// appends are never blocked by an in-flight snapshot.
	MaybeSnapshot(state StateSource, done func(error))
	// Sync forces everything appended so far to stable storage.
	Sync() error
	// Close syncs and closes the backend, waiting out in-flight snapshots.
	Close() error
}

// OpenJournal opens (creating if needed) the data directory and its
// engine — single-WAL for opts.Pool <= 1, pooled otherwise — truncating any
// torn tail left by a crash. A directory written by one engine refuses to
// open under the other: the FORMAT marker is the fast check, and the
// engines' own file layouts (legacy `wal` vs `wal-<k>.<seq>` lanes) are the
// authoritative guard, so a marker torn by a crash at first open cannot
// strand records or poison the directory.
func OpenJournal(dir string, opts JournalOptions) (JournalBackend, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("vc: journal dir %s: %w", dir, err)
	}
	if opts.Pool > 1 {
		return openPooledJournal(dir, opts)
	}
	// Structural guard before the marker: a directory holding pooled lane
	// segments must not silently open (and strand them) as single-WAL.
	if lanes, err := anyLaneSegments(dir); err != nil {
		return nil, err
	} else if lanes {
		return nil, fmt.Errorf("vc: journal dir %s holds pooled lane records; "+
			"reopen with the matching -journal-pool setting", dir)
	}
	if err := checkJournalFormat(dir, "single"); err != nil {
		return nil, err
	}
	wal, err := store.OpenWAL(filepath.Join(dir, journalWALFile), store.WALOptions{
		SyncEvery:      opts.SyncEvery,
		SyncEachAppend: opts.Fsync,
	})
	if err != nil {
		return nil, err
	}
	return &Journal{dir: dir, opts: opts.withDefaults(), wal: wal}, nil
}

// anyLaneSegments reports whether dir holds pooled lane files.
func anyLaneSegments(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, fmt.Errorf("vc: journal dir %s: %w", dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") || strings.HasPrefix(name, "snapshot-") {
			return true, nil
		}
	}
	return false, nil
}

// checkJournalFormat stamps (or verifies) the directory's engine marker.
// The marker is written atomically (temp + fsync + rename) and an invalid
// one — empty or torn by a crash during a previous first open — is
// rewritten rather than trusted: cross-engine protection comes from the
// structural layout guards, the marker only makes the mismatch error
// friendly.
func checkJournalFormat(dir, want string) error {
	path := filepath.Join(dir, journalFormatFile)
	got, err := os.ReadFile(path)
	switch {
	case err == nil && validFormatMarker(string(got)):
		if s := string(got); s != want {
			return fmt.Errorf("vc: journal dir %s holds %q records, not %q — "+
				"reopen with the matching -journal-pool setting", dir, s, want)
		}
		return nil
	case err != nil && !os.IsNotExist(err):
		return fmt.Errorf("vc: journal format marker: %w", err)
	}
	return writeFormatMarker(dir, path, want)
}

// validFormatMarker recognizes intact marker contents.
func validFormatMarker(s string) bool {
	if s == "single" {
		return true
	}
	var n int
	_, err := fmt.Sscanf(s, "pooled %d", &n)
	return err == nil && n > 1
}

// writeFormatMarker lands the marker atomically and durably.
func writeFormatMarker(dir, path, want string) error {
	tmp, err := os.CreateTemp(dir, journalFormatFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("vc: journal format marker: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.WriteString(want); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("vc: journal format marker: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("vc: journal format marker: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("vc: journal format marker: %w", err)
	}
	// Sync the directory so the marker survives power loss — it is written
	// before any lane/log file is created, so a durable marker means the
	// lane layout can never exist without its pool size on record.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("vc: journal format marker: %w", err)
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return fmt.Errorf("vc: journal format marker: %w", err)
	}
	return d.Close()
}

// Journal is the single-WAL engine: one log + one snapshot file. Snapshots
// block appends for the capture (the original engine, kept for small
// deployments and on-disk compatibility); the pooled engine trades that
// stall away.
type Journal struct {
	dir  string
	opts JournalOptions
	// mu gates appends against snapshots: the snapshot holds it across
	// state-capture + snapshot-write + log-truncation, so no record can
	// land after the capture and vanish in the truncation. Appenders
	// therefore must never hold a ballot/shard/vsc lock while appending —
	// the state capture takes those.
	mu           sync.Mutex
	wal          *store.WAL
	bytes        int64 // payload bytes appended since the last snapshot
	snapshotting bool
	perRecord    atomic.Int64 // measured replay ns/record (adaptive cadence)
}

// Dir returns the journal's data directory.
func (j *Journal) Dir() string { return j.dir }

// Replay implements JournalBackend.
func (j *Journal) Replay(fn func(payload []byte) error) error {
	t0 := time.Now()
	n, err := store.ReplayWAL(filepath.Join(j.dir, journalSnapshotFile), fn)
	if err != nil {
		return err
	}
	m, err := store.ReplayWAL(filepath.Join(j.dir, journalWALFile), fn)
	if err != nil {
		return err
	}
	observeReplayCost(&j.perRecord, time.Since(t0), n+m)
	return nil
}

// Append implements JournalBackend.
func (j *Journal) Append(recs [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.wal.AppendBatch(recs); err != nil {
		return err
	}
	for _, r := range recs {
		j.bytes += int64(len(r))
	}
	return nil
}

// MaybeSnapshot implements JournalBackend: a synchronous snapshot + log
// truncation when the cadence triggers. Appends block for the capture.
func (j *Journal) MaybeSnapshot(state StateSource, done func(error)) {
	j.mu.Lock()
	due := !j.snapshotting &&
		snapshotDue(j.opts, j.wal.Records(), j.bytes, j.perRecord.Load())
	if due {
		j.snapshotting = true
	}
	j.mu.Unlock()
	if !due {
		return
	}
	err := j.snapshot(state)
	j.mu.Lock()
	j.snapshotting = false
	j.mu.Unlock()
	done(err)
}

// snapshot atomically replaces the snapshot file with the records produced
// by state and truncates the log. Appends are blocked for the duration, so
// the capture covers every logged transition; a crash between the snapshot
// rename and the truncation merely replays records the snapshot already
// holds (harmless: application is idempotent).
func (j *Journal) snapshot(state StateSource) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := store.WriteWALFile(filepath.Join(j.dir, journalSnapshotFile), state(0, 1)); err != nil {
		return err
	}
	if err := j.wal.Reset(); err != nil {
		return err
	}
	j.bytes = 0
	return nil
}

// Sync implements JournalBackend.
func (j *Journal) Sync() error { return j.wal.Sync() }

// Close implements JournalBackend.
func (j *Journal) Close() error { return j.wal.Close() }

// snapshotDue is the shared cadence policy: the legacy fixed record count
// when SnapshotEvery is set, otherwise adaptive — bytes since the last
// snapshot, or the estimated replay time of the un-snapshotted log
// (records × the per-record cost measured during the last recovery).
func snapshotDue(opts JournalOptions, records, bytes, perRecordNs int64) bool {
	if opts.SnapshotEvery > 0 {
		return records >= int64(opts.SnapshotEvery)
	}
	if bytes >= opts.SnapshotBytes {
		return true
	}
	if perRecordNs <= 0 {
		perRecordNs = defaultReplayNsPerRecord
	}
	return time.Duration(records*perRecordNs) >= opts.TargetReplay
}

// defaultReplayNsPerRecord estimates replay cost before any measured
// recovery: ~2µs/record, the order observed for share/pending records.
const defaultReplayNsPerRecord = 2000

// observeReplayCost records a measured per-record replay cost (floored so a
// cached tiny replay cannot push the estimate to zero and disable the
// replay-time trigger).
func observeReplayCost(dst *atomic.Int64, d time.Duration, records int) {
	if records <= 0 {
		return
	}
	per := int64(d) / int64(records)
	if per < 500 {
		per = 500
	}
	dst.Store(per)
}

// --- record encoding -------------------------------------------------------

func jAppendBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b))) //nolint:gosec // protocol-bounded
	return append(dst, b...)
}

func encEndorsed(serial uint64, code []byte) []byte {
	dst := append(make([]byte, 0, 16+len(code)), recEndorsed)
	dst = binary.BigEndian.AppendUint64(dst, serial)
	return jAppendBytes(dst, code)
}

func encUCert(serial uint64, cert *wire.UCert) []byte {
	dst := []byte{recUCert}
	dst = binary.BigEndian.AppendUint64(dst, serial)
	return append(dst, wire.MarshalUCert(cert)...)
}

func encPending(serial uint64, code []byte, part uint8, row int, cert *wire.UCert) []byte {
	dst := []byte{recPending}
	dst = binary.BigEndian.AppendUint64(dst, serial)
	dst = jAppendBytes(dst, code)
	dst = append(dst, part)
	dst = binary.BigEndian.AppendUint32(dst, uint32(row)) //nolint:gosec // row < m
	return append(dst, wire.MarshalUCert(cert)...)
}

func encShare(serial uint64, index uint32, value *big.Int) []byte {
	dst := []byte{recShare}
	dst = binary.BigEndian.AppendUint64(dst, serial)
	dst = binary.BigEndian.AppendUint32(dst, index)
	return jAppendBytes(dst, group.ScalarBytes(value))
}

func encVoted(serial uint64, code, receipt []byte) []byte {
	dst := []byte{recVoted}
	dst = binary.BigEndian.AppendUint64(dst, serial)
	dst = jAppendBytes(dst, code)
	return jAppendBytes(dst, receipt)
}

// EncodeVotedRecord builds a realistic voted-transition journal record —
// exported for the journal-backend benchmarks (RunPoolAblation), which
// drive backends directly with protocol-shaped records.
func EncodeVotedRecord(serial uint64, code, receipt []byte) []byte {
	return encVoted(serial, code, receipt)
}

func encVSC(set []VotedBallot) []byte {
	dst := []byte{recVSC}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(set))) //nolint:gosec // protocol-bounded
	for _, vb := range set {
		dst = binary.BigEndian.AppendUint64(dst, vb.Serial)
		dst = jAppendBytes(dst, vb.Code)
	}
	return dst
}

// jdec is a cursor over one record payload.
type jdec struct {
	buf []byte
	bad bool
}

func (d *jdec) u8() byte {
	if d.bad || len(d.buf) < 1 {
		d.bad = true
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *jdec) u32() uint32 {
	if d.bad || len(d.buf) < 4 {
		d.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *jdec) u64() uint64 {
	if d.bad || len(d.buf) < 8 {
		d.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *jdec) bytes() []byte {
	n := d.u32()
	if d.bad || uint64(n) > uint64(len(d.buf)) {
		d.bad = true
		return nil
	}
	out := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return out
}

func (d *jdec) cert() *wire.UCert {
	if d.bad {
		return nil
	}
	u, rest, err := wire.UnmarshalUCert(d.buf)
	if err != nil {
		d.bad = true
		return nil
	}
	d.buf = rest
	return &u
}

// errBadRecord wraps journal decode failures (CRC passed but the payload
// does not parse: version skew or a foreign file).
var errBadRecord = errors.New("vc: malformed journal record")

// --- node recovery ---------------------------------------------------------

// Recover rebuilds the node's runtime ballot state from the snapshot and
// write-ahead log in dir (both may be absent on first boot) and attaches
// the journal so every later transition is logged there. It must be called
// after New and before Start. Recovery is idempotent: recovering the same
// directory twice yields an identical StateHash.
func (n *Node) Recover(dir string) error {
	return n.RecoverWithOptions(dir, JournalOptions{})
}

// RecoverWithOptions is Recover with explicit durability tuning (engine
// selection, pool size, sync cadence, ack policy).
func (n *Node) RecoverWithOptions(dir string, opts JournalOptions) error {
	j, err := OpenJournal(dir, opts)
	if err != nil {
		return err
	}
	if err := n.RecoverBackend(j, opts.Policy); err != nil {
		_ = j.Close()
		return err
	}
	return nil
}

// RecoverBackend replays an already opened backend into the node and
// attaches it — the entry point for custom backends (in-memory, fault
// injection). The caller keeps ownership of the backend until this returns
// nil; afterwards Stop closes it.
func (n *Node) RecoverBackend(j JournalBackend, policy AckPolicy) error {
	if err := j.Replay(n.applyJournalRecord); err != nil {
		return err
	}
	n.finishRecovery()
	n.journal = j
	n.journalPolicy = policy
	return nil
}

// applyJournalRecord applies one persisted transition. Application is
// idempotent and order-independent: every record is a monotone fact, so
// duplicates and stale records (snapshot+log overlap, interleaved append
// order across goroutines) are no-ops.
func (n *Node) applyJournalRecord(payload []byte) error {
	d := &jdec{buf: payload}
	kind := d.u8()
	if kind == recVSC {
		cnt := d.u32()
		if d.bad || uint64(cnt) > uint64(n.manifest.NumBallots) {
			return errBadRecord
		}
		set := make([]VotedBallot, 0, cnt)
		for i := uint32(0); i < cnt; i++ {
			set = append(set, VotedBallot{Serial: d.u64(), Code: d.bytes()})
		}
		if d.bad || len(d.buf) != 0 {
			return errBadRecord
		}
		n.vscMu.Lock()
		if !n.vscDone {
			n.vscDone = true
			n.vscResult = set
		}
		n.vscDurable = true // replayed from the journal, so it is on disk
		n.vscMu.Unlock()
		return nil
	}
	serial := d.u64()
	if d.bad || serial == 0 || serial > uint64(n.manifest.NumBallots) {
		return errBadRecord
	}
	st := n.state(serial)
	st.mu.Lock()
	defer st.mu.Unlock()
	switch kind {
	case recEndorsed:
		code := d.bytes()
		if d.bad {
			return errBadRecord
		}
		if st.endorsedCode == nil {
			st.endorsedCode = code
		}
		st.endorsedDurable = true
	case recUCert:
		cert := d.cert()
		if d.bad || cert == nil {
			return errBadRecord
		}
		installCertLocked(st, cert.Code, cert)
	case recPending:
		code := d.bytes()
		part := d.u8()
		row := d.u32()
		cert := d.cert()
		if d.bad || cert == nil {
			return errBadRecord
		}
		installCertLocked(st, code, cert)
		st.part, st.row = part, int(row)
		st.bindingDurable = true
	case recShare:
		index := d.u32()
		value := d.bytes()
		if d.bad {
			return errBadRecord
		}
		v, err := group.DecodeScalar(value)
		if err != nil {
			return fmt.Errorf("%w: share value: %v", errBadRecord, err)
		}
		if st.shares == nil {
			st.shares = make(map[uint32]*big.Int, n.hv)
		}
		if _, ok := st.shares[index]; !ok {
			st.shares[index] = v
		}
		if index == uint32(n.self)+1 {
			st.sentVoteP = true
		}
	case recVoted:
		code := d.bytes()
		receipt := d.bytes()
		if d.bad {
			return errBadRecord
		}
		if st.usedCode == nil {
			st.usedCode = code
		}
		st.status = Voted
		if st.receipt == nil {
			st.receipt = receipt
		}
		st.receiptDurable = true
	default:
		return fmt.Errorf("%w: unknown kind %d", errBadRecord, kind)
	}
	return nil
}

// installCertLocked raises a ballot to (at least) Pending under a known
// certificate. Caller holds st.mu. The certificate came from our own
// journal: it verified before it was logged, so it is not re-verified.
func installCertLocked(st *ballotState, code []byte, cert *wire.UCert) {
	if st.cert == nil {
		st.cert = cert
	}
	if st.usedCode == nil {
		st.usedCode = code
	}
	if st.status == NotVoted {
		st.status = Pending
	}
}

// finishRecovery reconstructs receipts for ballots whose journal holds a
// reconstruction-threshold share set but no voted record (a crash between
// the last share landing and the receipt record).
func (n *Node) finishRecovery() {
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		states := make(map[uint64]*ballotState, len(sh.ballots))
		for serial, st := range sh.ballots {
			states[serial] = st
		}
		sh.mu.Unlock()
		for serial, st := range states {
			st.mu.Lock()
			// The journal already holds the shares this derives from, so
			// the record and waiters (none at recovery) are dropped.
			n.maybeReconstructLocked(serial, st)
			st.mu.Unlock()
		}
	}
}

// --- journaling hooks ------------------------------------------------------

// strictJournal reports whether a journal failure must refuse the dependent
// ack (Policy: Strict on a journaled node).
func (n *Node) strictJournal() bool {
	return n.journal != nil && n.journalPolicy == PolicyStrict
}

// journalAppend logs transition records (no-op without a journal), returning
// nil once they are appended. What "appended" buys is the fsync policy's
// call: records reach the OS before any ack (process-crash safe), and
// JournalOptions.Fsync upgrades that to per-record power-loss durability —
// Strict deployments should pair with it. Must not be called while holding
// any ballot or shard lock: a snapshot triggered here serializes state under
// those locks. On append failure the error is counted and returned — call
// sites that gate an external ack consult strictJournal() to decide between
// refusing the ack (Strict) and serving from memory (Available; DESIGN.md,
// "Durability and recovery").
func (n *Node) journalAppend(recs ...[]byte) error {
	j := n.journal
	if j == nil || len(recs) == 0 {
		return nil
	}
	if err := j.Append(recs); err != nil {
		n.metrics.JournalErrors.Add(1)
		return err
	}
	n.metrics.JournalRecords.Add(int64(len(recs)))
	j.MaybeSnapshot(n.laneState, func(err error) {
		if err != nil {
			n.metrics.JournalErrors.Add(1)
		} else {
			n.metrics.Snapshots.Add(1)
		}
	})
	return nil
}

// journalLaneOf routes a serial to its WAL lane (identity for one lane).
func journalLaneOf(serial uint64, lanes int) int {
	if lanes <= 1 {
		return 0
	}
	return int(serial % uint64(lanes)) //nolint:gosec // lanes is small
}

// JournalKeyLane routes an 8-byte record routing key to its WAL lane — the
// same hash PooledJournal applies to bytes [1,9) of every appended record.
// Exported for other subsystems that journal through JournalBackend (the BB
// replica), whose StateSource must produce each lane's snapshot with the
// routing the pooled engine used for the corresponding appends.
func JournalKeyLane(key uint64, lanes int) int {
	return journalLaneOf(key, lanes)
}

// journalRecLane routes an encoded record to its WAL lane: per-ballot
// records hash by the serial at bytes [1,9); the vote-set-consensus record
// (no serial) always lands in lane 0.
func journalRecLane(rec []byte, lanes int) int {
	if lanes <= 1 || len(rec) < 9 || rec[0] == recVSC {
		return 0
	}
	return journalLaneOf(binary.BigEndian.Uint64(rec[1:9]), lanes)
}

// serializeState dumps the node's entire runtime state as journal records —
// the basis of StateHash and the single-lane snapshot payload.
func (n *Node) serializeState() [][]byte {
	return n.laneState(0, 1)
}

// laneState is the node's StateSource: lane's share of the runtime state
// (every ballot whose serial hashes to lane, plus the consensus result in
// lane 0) as journal records. Deterministic: ballots ordered by serial,
// shares by index.
func (n *Node) laneState(lane, lanes int) [][]byte {
	type entry struct {
		serial uint64
		st     *ballotState
	}
	var entries []entry
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		for serial, st := range sh.ballots {
			if journalLaneOf(serial, lanes) == lane {
				entries = append(entries, entry{serial, st})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(entries, func(i, k int) bool { return entries[i].serial < entries[k].serial })
	var out [][]byte
	for _, e := range entries {
		st := e.st
		st.mu.Lock()
		if st.endorsedCode != nil {
			out = append(out, encEndorsed(e.serial, st.endorsedCode))
		}
		if st.cert != nil {
			out = append(out, encPending(e.serial, st.usedCode, st.part, st.row, st.cert))
		}
		idxs := make([]uint32, 0, len(st.shares))
		for idx := range st.shares {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(i, k int) bool { return idxs[i] < idxs[k] })
		for _, idx := range idxs {
			out = append(out, encShare(e.serial, idx, st.shares[idx]))
		}
		if st.status == Voted {
			out = append(out, encVoted(e.serial, st.usedCode, st.receipt))
		}
		st.mu.Unlock()
	}
	if lane == 0 {
		n.vscMu.Lock()
		if n.vscDone {
			out = append(out, encVSC(n.vscResult))
		}
		n.vscMu.Unlock()
	}
	return out
}

// StateHash digests the node's runtime ballot state. Two nodes (or one node
// before and after a recover cycle) with identical state hash identically —
// the acceptance check for recovery idempotence.
func (n *Node) StateHash() [32]byte {
	h := sha256.New()
	var lenBuf [4]byte
	for _, rec := range n.serializeState() {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(rec))) //nolint:gosec // record-sized
		h.Write(lenBuf[:])
		h.Write(rec)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
