package vc

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/store"
	"ddemos/internal/transport"
)

// backendRecords collects every record a backend replays.
func backendRecords(t *testing.T, j JournalBackend) [][]byte {
	t.Helper()
	var out [][]byte
	if err := j.Replay(func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// backendNode builds an unstarted node recovered from backend j.
func backendNode(t *testing.T, c *cluster, idx, netID int, j JournalBackend) *Node {
	t.Helper()
	node, err := New(Config{
		Init:     c.data.VC[idx],
		Endpoint: c.net.Endpoint(transport.NodeID(netID)), //nolint:gosec // test id
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.RecoverBackend(j, PolicyAvailable); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Stop)
	return node
}

// TestBackendDifferentialEquivalence drives the record stream of an
// identical seeded election through all three backends — memory,
// single-WAL, pooled — and asserts the recovered Node.StateHash is
// byte-identical. The stream is harvested from a real journaled election,
// so the equivalence claim covers real protocol records (certs, shares,
// receipts), not synthetic ones.
func TestBackendDifferentialEquivalence(t *testing.T) {
	c := journaledCluster(t, 3)
	for serial := uint64(1); serial <= 3; serial++ {
		if _, err := c.simVote(serial, ballot.PartA, int(serial)%2, int(serial)%4); err != nil {
			t.Fatal(err)
		}
	}
	// Stop node 0 cleanly (journal synced + closed) and harvest its stream.
	c.StopNode(0)
	src, err := OpenJournal(c.dirs[0], JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	recs := backendRecords(t, src)
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("election journaled no records")
	}

	// Feed the identical stream into a fresh single-WAL, pooled, and
	// memory backend; close and reopen the file engines (a full recovery
	// cycle, torn-tail scan included).
	singleDir := filepath.Join(t.TempDir(), "single")
	pooledDir := filepath.Join(t.TempDir(), "pooled")
	for _, b := range []struct {
		dir  string
		opts JournalOptions
	}{{singleDir, JournalOptions{}}, {pooledDir, JournalOptions{Pool: 3}}} {
		j, err := OpenJournal(b.dir, b.opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(recs); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	mem := NewMemJournal(JournalOptions{})
	if err := mem.Append(recs); err != nil {
		t.Fatal(err)
	}

	single, err := OpenJournal(singleDir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := OpenJournal(pooledDir, JournalOptions{Pool: 3})
	if err != nil {
		t.Fatal(err)
	}
	nSingle := backendNode(t, c, 0, 90, single)
	nPooled := backendNode(t, c, 1, 91, pooled)
	nMem := backendNode(t, c, 2, 92, mem)

	hSingle, hPooled, hMem := nSingle.StateHash(), nPooled.StateHash(), nMem.StateHash()
	if hSingle != hPooled {
		t.Fatal("pooled backend recovered different state than single-WAL")
	}
	if hSingle != hMem {
		t.Fatal("memory backend recovered different state than single-WAL")
	}
	// And all three match the election state the stream came from.
	c.RestartNode(0)
	if got := c.node(0).StateHash(); got != hSingle {
		t.Fatal("backend-recovered state differs from the origin node's recovery")
	}
}

// TestPooledElectionRecovery runs a full seeded election on pooled journals
// (3 lanes per node, snapshot pressure on) and asserts every node recovers
// to its exact pre-stop state — the end-to-end pooled analogue of
// TestRecoverRestoresVotedStateAndReceipt.
func TestPooledElectionRecovery(t *testing.T) {
	dirs := journalDirs(t, 4)
	jopts := JournalOptions{Pool: 3, SnapshotEvery: 4}
	c := newSimClusterJ(t, 1, nil, 4, 4,
		transport.LinkProfile{Latency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond},
		rawStack, dirs, jopts)
	receipts := make(map[uint64][]byte)
	for serial := uint64(1); serial <= 4; serial++ {
		r, err := c.simVote(serial, ballot.PartB, int(serial)%2, int(serial)%4)
		if err != nil {
			t.Fatal(err)
		}
		receipts[serial] = r
	}
	for i := 0; i < 4; i++ {
		old := c.node(i)
		c.StopNode(i)
		want := old.StateHash()
		c.RestartNode(i)
		if got := c.node(i).StateHash(); got != want {
			t.Fatalf("node %d: pooled recovery state hash differs", i)
		}
	}
	// Receipts reproduce at recovered nodes.
	for serial, want := range receipts {
		r, err := c.simVote(serial, ballot.PartB, int(serial)%2, int(serial)%4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r, want) {
			t.Fatalf("ballot %d: receipt changed across pooled recovery", serial)
		}
	}
	// Snapshot pressure (threshold 4) must have produced lane snapshots.
	snaps := 0
	for i := 0; i < 4; i++ {
		entries, err := os.ReadDir(dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if len(e.Name()) >= 9 && e.Name()[:9] == "snapshot-" {
				snaps++
			}
		}
	}
	if snaps == 0 {
		t.Fatal("no lane snapshot was ever written")
	}
}

// TestPooledSnapshotNeverBlocksAppends is the acceptance check for the
// copy-on-write snapshot protocol: with a snapshot capture artificially
// stalled (the state source blocks), appends to the same lane must keep
// completing — they land on the rotated segment. The single-WAL engine, by
// design, blocks; the pooled engine must not.
func TestPooledSnapshotNeverBlocksAppends(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{Pool: 2, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j.Close() }()

	rec := func(serial uint64) []byte {
		return encVoted(serial, []byte("code"), []byte("receipt!"))
	}
	// Cross the lane-0 threshold (even serials hash to lane 0 of 2).
	for s := uint64(2); s <= 8; s += 2 {
		if err := j.Append([][]byte{rec(s)}); err != nil {
			t.Fatal(err)
		}
	}
	captureEntered := make(chan struct{})
	captureRelease := make(chan struct{})
	done := make(chan error, 4)
	j.MaybeSnapshot(func(lane, lanes int) [][]byte {
		close(captureEntered)
		<-captureRelease
		return [][]byte{rec(2), rec(4), rec(6), rec(8)}
	}, func(err error) { done <- err })
	select {
	case <-captureEntered:
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot capture never started")
	}

	// The capture is mid-flight and blocked. Appends to the same lane must
	// complete regardless.
	appended := make(chan error, 1)
	go func() {
		var err error
		for s := uint64(10); s <= 40 && err == nil; s += 2 {
			err = j.Append([][]byte{rec(s)})
		}
		appended <- err
	}()
	select {
	case err := <-appended:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("appends blocked behind an in-flight snapshot")
	}

	close(captureRelease)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot never completed")
	}

	// Nothing was lost: snapshot content + post-seal appends all replay.
	seen := make(map[uint64]bool)
	if err := j.Replay(func(p []byte) error {
		d := &jdec{buf: p}
		if d.u8() == recVoted {
			seen[d.u64()] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for s := uint64(2); s <= 40; s += 2 {
		if !seen[s] {
			t.Fatalf("record for serial %d lost across concurrent snapshot", s)
		}
	}
}

// TestAdaptiveSnapshotCadence exercises the two adaptive triggers (bytes
// since snapshot, estimated replay time) and the legacy record-count
// override.
func TestAdaptiveSnapshotCadence(t *testing.T) {
	opts := JournalOptions{}.withDefaults()
	// Fixed count overrides everything.
	fixed := opts
	fixed.SnapshotEvery = 10
	if snapshotDue(fixed, 9, 1<<30, 1<<30) {
		t.Fatal("fixed cadence triggered early")
	}
	if !snapshotDue(fixed, 10, 0, 0) {
		t.Fatal("fixed cadence did not trigger at the threshold")
	}
	// Byte trigger.
	if snapshotDue(opts, 10, opts.SnapshotBytes-1, defaultReplayNsPerRecord) {
		t.Fatal("byte trigger fired below the threshold")
	}
	if !snapshotDue(opts, 10, opts.SnapshotBytes, defaultReplayNsPerRecord) {
		t.Fatal("byte trigger did not fire at the threshold")
	}
	// Replay-time trigger: records × per-record cost ≥ budget.
	perRecord := int64(time.Millisecond) // pathological 1ms/record replay
	records := int64(opts.TargetReplay/time.Millisecond) + 1
	if !snapshotDue(opts, records, 0, perRecord) {
		t.Fatal("replay-time trigger did not fire")
	}
	if snapshotDue(opts, 10, 0, perRecord) {
		t.Fatal("replay-time trigger fired for a cheap log")
	}

	// Integration: a single-WAL journal with a tiny byte budget snapshots
	// without any record-count setting.
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{SnapshotBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j.Close() }()
	var recs [][]byte
	state := func(lane, lanes int) [][]byte { return recs }
	snapped := 0
	for s := uint64(1); s <= 8; s++ {
		rec := encVoted(s, []byte("0123456789abcdef"), []byte("receipt!"))
		recs = append(recs, rec)
		if err := j.Append([][]byte{rec}); err != nil {
			t.Fatal(err)
		}
		j.MaybeSnapshot(state, func(err error) {
			if err != nil {
				t.Error(err)
			}
			snapped++
		})
	}
	if snapped == 0 {
		t.Fatal("adaptive byte cadence never snapshotted")
	}
	if _, err := os.Stat(filepath.Join(dir, journalSnapshotFile)); err != nil {
		t.Fatalf("no snapshot file: %v", err)
	}
}

// TestJournalFormatGuard: a directory written by one engine must refuse to
// open under the other (or under a different pool size) instead of
// silently stranding records.
func TestJournalFormatGuard(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([][]byte{encEndorsed(1, []byte("c"))}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir, JournalOptions{Pool: 4}); err == nil {
		t.Fatal("pooled open of a single-WAL dir must fail")
	}
	// ...and the failed pooled attempt must not poison the directory: it
	// still opens (and replays) as single-WAL.
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatalf("single-WAL dir unusable after failed pooled open: %v", err)
	}
	n := 0
	if err := j2.Replay(func([]byte) error { n++; return nil }); err != nil || n != 1 {
		t.Fatalf("records lost after failed pooled open: n=%d err=%v", n, err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	pdir := t.TempDir()
	p, err := OpenJournal(pdir, JournalOptions{Pool: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(pdir, JournalOptions{Pool: 2}); err == nil {
		t.Fatal("pool-size change must fail")
	}
	if _, err := OpenJournal(pdir, JournalOptions{}); err == nil {
		t.Fatal("single-WAL open of a pooled dir must fail")
	}
	// Same settings reopen fine.
	p2, err := OpenJournal(pdir, JournalOptions{Pool: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzPooledReplay drives torn tails into individual pooled lanes: a
// deterministic record set is appended across 3 lanes, the fuzzer truncates
// each lane's active segment by an arbitrary amount, and replay must
// deliver a per-lane prefix of what was appended — never an error, never a
// record from beyond the tear, never corruption.
func FuzzPooledReplay(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint16(0))
	f.Add(uint16(1), uint16(9), uint16(40))
	f.Add(uint16(1000), uint16(3), uint16(17))
	f.Fuzz(func(t *testing.T, cut0, cut1, cut2 uint16) {
		const lanes = 3
		dir := t.TempDir()
		j, err := OpenJournal(dir, JournalOptions{Pool: lanes, SnapshotEvery: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		// Per lane, an ordered sequence of records with recognizable codes.
		perLane := make([][][]byte, lanes)
		for s := uint64(1); s <= 12; s++ {
			lane := journalLaneOf(s, lanes)
			rec := encVoted(s, []byte(fmt.Sprintf("code-%d-%d", s, len(perLane[lane]))), []byte("receipt!"))
			perLane[lane] = append(perLane[lane], rec)
			if err := j.Append([][]byte{rec}); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		// Tear each lane's active segment independently.
		for lane, cut := range []uint16{cut0, cut1, cut2} {
			path := filepath.Join(dir, laneSegmentName(lane, 1))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			n := int(cut)
			if n > len(data) {
				n = len(data)
			}
			if err := os.WriteFile(path, data[:len(data)-n], 0o600); err != nil {
				t.Fatal(err)
			}
		}
		// Replay must yield a prefix per lane.
		j2, err := OpenJournal(dir, JournalOptions{Pool: lanes, SnapshotEvery: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = j2.Close() }()
		got := make([][][]byte, lanes)
		if err := j2.Replay(func(p []byte) error {
			d := &jdec{buf: p}
			if d.u8() != recVoted {
				t.Fatal("replayed record has unexpected kind")
			}
			serial := d.u64()
			lane := journalLaneOf(serial, lanes)
			got[lane] = append(got[lane], append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("torn-lane replay errored: %v", err)
		}
		for lane := 0; lane < lanes; lane++ {
			if len(got[lane]) > len(perLane[lane]) {
				t.Fatalf("lane %d replayed %d records, appended %d", lane, len(got[lane]), len(perLane[lane]))
			}
			for i, rec := range got[lane] {
				if !bytes.Equal(rec, perLane[lane][i]) {
					t.Fatalf("lane %d record %d corrupted across tear", lane, i)
				}
			}
		}
		// A lane's tear must not eat another lane's records: untorn lanes
		// replay in full.
		for lane, cut := range []uint16{cut0, cut1, cut2} {
			if cut == 0 && len(got[lane]) != len(perLane[lane]) {
				t.Fatalf("untorn lane %d lost records", lane)
			}
		}
	})
}

// TestPooledConcurrentAppendReplay hammers a pooled journal from many
// goroutines and verifies nothing is lost or reordered within a lane.
func TestPooledConcurrentAppendReplay(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{Pool: 4})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				serial := uint64(w*per + i + 1)
				if err := j.Append([][]byte{encEndorsed(serial, []byte("x"))}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(dir, JournalOptions{Pool: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }()
	count := 0
	if err := j2.Replay(func(p []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != workers*per {
		t.Fatalf("replayed %d of %d records", count, workers*per)
	}
}

// TestWALFileStoreGuard keeps store.ReplayWAL honest about foreign files in
// the pooled layout: the FORMAT marker must never be parsed as a WAL.
func TestWALFileStoreGuard(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{Pool: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j.Close() }()
	if _, err := store.ReplayWAL(filepath.Join(dir, journalFormatFile), nil); err == nil {
		t.Fatal("FORMAT marker parsed as a WAL file")
	}
}
