package vc

import (
	"sync"
)

// MemJournal is the in-memory journal backend: the full JournalBackend
// contract (append, replay, snapshot compaction) without any files. It
// backs tests — backend-differential suites, fault injection via
// SetAppendError, and harnesses that restart nodes without a disk — and is
// deliberately not durable: a MemJournal only survives a restart if the
// harness hands the same object to the next incarnation.
type MemJournal struct {
	opts JournalOptions

	mu         sync.Mutex
	snap       [][]byte
	recs       [][]byte
	bytes      int64
	failErr    error
	compacting bool
}

// NewMemJournal builds an empty in-memory backend. Only the snapshot-cadence
// fields of opts are consulted.
func NewMemJournal(opts JournalOptions) *MemJournal {
	return &MemJournal{opts: opts.withDefaults()}
}

// SetAppendError injects (or clears, with nil) a failure returned by every
// subsequent Append — the lever of the Strict-policy fault tests.
func (m *MemJournal) SetAppendError(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failErr = err
}

// Replay implements JournalBackend.
func (m *MemJournal) Replay(fn func(payload []byte) error) error {
	m.mu.Lock()
	all := make([][]byte, 0, len(m.snap)+len(m.recs))
	all = append(all, m.snap...)
	all = append(all, m.recs...)
	m.mu.Unlock()
	for _, rec := range all {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Append implements JournalBackend.
func (m *MemJournal) Append(recs [][]byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failErr != nil {
		return m.failErr
	}
	for _, r := range recs {
		m.recs = append(m.recs, append([]byte(nil), r...))
		m.bytes += int64(len(r))
	}
	return nil
}

// MaybeSnapshot implements JournalBackend: a synchronous log compaction
// when the cadence triggers. Records appended while the state capture runs
// are kept — their mutations may postdate the capture — mirroring the
// pooled engine's seal-then-capture rule.
func (m *MemJournal) MaybeSnapshot(state StateSource, done func(error)) {
	m.mu.Lock()
	due := !m.compacting && snapshotDue(m.opts, int64(len(m.recs)), m.bytes, defaultReplayNsPerRecord)
	cut := len(m.recs)
	if due {
		m.compacting = true
	}
	m.mu.Unlock()
	if !due {
		return
	}
	recs := state(0, 1)
	m.mu.Lock()
	m.snap = recs
	m.recs = append([][]byte(nil), m.recs[cut:]...)
	m.bytes = 0
	for _, r := range m.recs {
		m.bytes += int64(len(r))
	}
	m.compacting = false
	m.mu.Unlock()
	done(nil)
}

// Records returns how many un-compacted records the log holds (tests).
func (m *MemJournal) Records() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// Sync implements JournalBackend (a no-op: memory has no stable storage).
func (m *MemJournal) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failErr
}

// Close implements JournalBackend (a no-op: the object keeps its records,
// so a harness can recover the next incarnation from it).
func (m *MemJournal) Close() error { return nil }
