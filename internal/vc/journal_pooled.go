package vc

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ddemos/internal/store"
)

// PooledJournal is the sharded journal engine: N write-ahead-log lanes
// hashed by ballot serial, each with its own group-commit fsync loop — the
// runtime-state analogue of the paper's PostgreSQL connection pool (Fig. 5a
// sweeps its size). Two properties distinguish it from the single-WAL
// engine:
//
//   - Appends to different lanes proceed in parallel, so the per-append
//     fsync (or group-commit mutex) of one lane never serializes the whole
//     node. Ballot traffic is serial-affine, so a ballot's records always
//     land in one lane in order (not that order matters: records are
//     idempotent monotone facts).
//
//   - Snapshots are copy-on-write per lane: the snapshot seals the lane's
//     active log segment, rotates appends onto a fresh segment, and only
//     then captures state and writes the snapshot file in the background.
//     Appends are never blocked by an in-flight capture — they just land in
//     the new segment, which stays in the replay set.
//
// On-disk layout per lane k: segments "wal-<k>.<seq>" (ascending seq; the
// highest is active) and the snapshot "snapshot-<k>". Replay order is
// snapshot, then segments by seq. A crash at any point between seal,
// snapshot write, and segment deletion only leaves extra records that the
// snapshot already covers — idempotent replay makes the overlap benign.
type PooledJournal struct {
	dir       string
	opts      JournalOptions
	lanes     []*journalLane
	perRecord atomic.Int64 // measured replay ns/record (adaptive cadence)

	// snapMu serializes capture launches against Close: without it a
	// MaybeSnapshot racing Close could Add after the Wait, leaving a
	// capture running beyond Close's return.
	snapMu sync.Mutex
	snapWG sync.WaitGroup
	closed bool
}

type journalLane struct {
	idx int
	dir string

	mu           sync.Mutex
	wal          *store.WAL // active segment
	seq          uint64     // active segment sequence number
	sealed       []string   // sealed segment paths awaiting snapshot+delete
	bytes        int64      // payload bytes in the active segment
	snapshotting bool

	// Lock-free mirrors of the cadence inputs: MaybeSnapshot runs on every
	// append and sweeps all lanes, so its not-due fast path must not take
	// the other lanes' mutexes (that would re-serialize exactly the locks
	// the pool exists to decouple). Kept in sync under mu; reads may be
	// slightly stale, which only shifts a snapshot by one append.
	fastRecords atomic.Int64
	fastBytes   atomic.Int64
	fastBusy    atomic.Bool
}

func laneSegmentName(lane int, seq uint64) string {
	return fmt.Sprintf("wal-%d.%06d", lane, seq)
}

func laneSnapshotName(lane int) string {
	return fmt.Sprintf("snapshot-%d", lane)
}

// openPooledJournal opens (creating if needed) a pooled journal of
// opts.Pool lanes. The FORMAT marker pins both the engine and the lane
// count: lane hashing and per-lane snapshots are only consistent for the
// pool size the records were written under.
func openPooledJournal(dir string, opts JournalOptions) (*PooledJournal, error) {
	opts = opts.withDefaults()
	// The legacy check must precede the marker stamp: a pre-marker
	// single-WAL directory opened with the wrong pool flag must stay
	// reopenable as single-WAL, not get poisoned with a pooled marker. Both
	// legacy files count — after a snapshot cycle the state lives in
	// `snapshot` and `wal` can legitimately be empty.
	for _, legacyName := range []string{journalWALFile, journalSnapshotFile} {
		if legacy, err := os.Stat(filepath.Join(dir, legacyName)); err == nil && legacy.Size() > 0 {
			return nil, fmt.Errorf("vc: journal dir %s holds single-WAL records; "+
				"reopen with -journal-pool 1", dir)
		}
	}
	if err := checkJournalFormat(dir, fmt.Sprintf("pooled %d", opts.Pool)); err != nil {
		return nil, err
	}
	// Stranding guard independent of the marker: replay only walks the
	// configured lanes, so files from a higher lane index mean the
	// directory was written under a larger pool.
	if maxLane, any, err := maxLaneIndex(dir); err != nil {
		return nil, err
	} else if any && maxLane >= opts.Pool {
		return nil, fmt.Errorf("vc: journal dir %s holds lane %d records beyond pool %d; "+
			"reopen with the pool size the directory was written under", dir, maxLane, opts.Pool)
	}
	p := &PooledJournal{dir: dir, opts: opts}
	for k := 0; k < opts.Pool; k++ {
		lane, err := openJournalLane(dir, k, opts)
		if err != nil {
			_ = p.Close()
			return nil, err
		}
		p.lanes = append(p.lanes, lane)
	}
	return p, nil
}

// openJournalLane scans the lane's existing segments: all but the newest
// become sealed (they were rotated out by an earlier snapshot cycle that
// did not finish deleting them) and the newest reopens for appending.
func openJournalLane(dir string, idx int, opts JournalOptions) (*journalLane, error) {
	segs, err := laneSegments(dir, idx)
	if err != nil {
		return nil, err
	}
	lane := &journalLane{idx: idx, dir: dir, seq: 1}
	if n := len(segs); n > 0 {
		lane.seq = segs[n-1]
		for _, seq := range segs[:n-1] {
			lane.sealed = append(lane.sealed, filepath.Join(dir, laneSegmentName(idx, seq)))
		}
	}
	lane.wal, err = store.OpenWAL(filepath.Join(dir, laneSegmentName(idx, lane.seq)), store.WALOptions{
		SyncEvery:      opts.SyncEvery,
		SyncEachAppend: opts.Fsync,
	})
	if err != nil {
		return nil, err
	}
	lane.fastRecords.Store(lane.wal.Records())
	return lane, nil
}

// maxLaneIndex scans the directory for the highest lane index any lane
// file (segment or snapshot) refers to.
func maxLaneIndex(dir string) (maxLane int, any bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, false, fmt.Errorf("vc: journal dir %s: %w", dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		var lane int
		switch {
		case strings.HasPrefix(name, "wal-"):
			dot := strings.IndexByte(name, '.')
			if dot < 0 {
				continue
			}
			lane64, perr := strconv.ParseInt(name[len("wal-"):dot], 10, 32)
			if perr != nil {
				continue
			}
			lane = int(lane64)
		case strings.HasPrefix(name, "snapshot-"):
			lane64, perr := strconv.ParseInt(name[len("snapshot-"):], 10, 32)
			if perr != nil {
				continue
			}
			lane = int(lane64)
		default:
			continue
		}
		if !any || lane > maxLane {
			maxLane, any = lane, true
		}
	}
	return maxLane, any, nil
}

// laneSegments lists a lane's segment sequence numbers, ascending.
func laneSegments(dir string, lane int) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("vc: journal dir %s: %w", dir, err)
	}
	prefix := fmt.Sprintf("wal-%d.", lane)
	var seqs []uint64
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		seq, err := strconv.ParseUint(e.Name()[len(prefix):], 10, 64)
		if err != nil {
			continue // foreign file; replay ignores it too
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, k int) bool { return seqs[i] < seqs[k] })
	return seqs, nil
}

// Dir returns the journal's data directory.
func (p *PooledJournal) Dir() string { return p.dir }

// Lanes returns the pool size.
func (p *PooledJournal) Lanes() int { return len(p.lanes) }

// Replay implements JournalBackend: per lane, the snapshot then every
// segment in sequence order. Lane order is irrelevant — records are
// order-independent facts.
func (p *PooledJournal) Replay(fn func(payload []byte) error) error {
	t0 := time.Now()
	total := 0
	for _, lane := range p.lanes {
		n, err := store.ReplayWAL(filepath.Join(p.dir, laneSnapshotName(lane.idx)), fn)
		if err != nil {
			return err
		}
		total += n
		segs, err := laneSegments(p.dir, lane.idx)
		if err != nil {
			return err
		}
		for _, seq := range segs {
			// The active segment is among these; ReplayWAL opens read-only,
			// which is safe before any post-recovery append.
			n, err = store.ReplayWAL(filepath.Join(p.dir, laneSegmentName(lane.idx, seq)), fn)
			if err != nil {
				return err
			}
			total += n
		}
	}
	observeReplayCost(&p.perRecord, time.Since(t0), total)
	return nil
}

// Append implements JournalBackend: records are routed to their serial's
// lane and appended per lane in one batch. Lanes fail independently; the
// first error is returned (Strict nodes then refuse the dependent ack —
// duplicate records from the lanes that did succeed are harmless on
// replay).
func (p *PooledJournal) Append(recs [][]byte) error {
	if len(p.lanes) == 1 {
		return p.lanes[0].append(recs)
	}
	// The common case is a single-ballot batch: all records share one lane.
	first := journalRecLane(recs[0], len(p.lanes))
	single := true
	for _, r := range recs[1:] {
		if journalRecLane(r, len(p.lanes)) != first {
			single = false
			break
		}
	}
	if single {
		return p.lanes[first].append(recs)
	}
	byLane := make(map[int][][]byte, 2)
	for _, r := range recs {
		k := journalRecLane(r, len(p.lanes))
		byLane[k] = append(byLane[k], r)
	}
	var firstErr error
	for k, group := range byLane {
		if err := p.lanes[k].append(group); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (l *journalLane) append(recs [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.wal.AppendBatch(recs); err != nil {
		return err
	}
	var n int64
	for _, r := range recs {
		n += int64(len(r))
	}
	l.bytes += n
	l.fastBytes.Add(n)
	l.fastRecords.Add(int64(len(recs)))
	return nil
}

// MaybeSnapshot implements JournalBackend. For every lane past its cadence
// threshold it seals the active segment under the lane lock (a rename-free
// rotation: open the next segment, remember the sealed path), then captures
// the lane's state and writes the snapshot in a background goroutine —
// appends to the lane proceed on the fresh segment throughout. The capture
// is taken after the seal, and every sealed record's state mutation
// happened before its append returned, so the snapshot always covers the
// sealed segments; records racing into the new segment replay as no-ops.
func (p *PooledJournal) MaybeSnapshot(state StateSource, done func(error)) {
	per := p.perRecord.Load()
	for _, lane := range p.lanes {
		// Lock-free not-due fast path: this sweep runs on every append, and
		// touching the other lanes' mutexes here would re-serialize the
		// pool. The mirrors may lag one append; the locked re-check below is
		// authoritative.
		if lane.fastBusy.Load() ||
			!snapshotDue(p.opts, lane.fastRecords.Load(), lane.fastBytes.Load(), per) {
			continue
		}
		lane.mu.Lock()
		due := !lane.snapshotting && snapshotDue(p.opts, lane.wal.Records(), lane.bytes, per)
		if !due {
			lane.mu.Unlock()
			continue
		}
		p.snapMu.Lock()
		if p.closed {
			p.snapMu.Unlock()
			lane.mu.Unlock()
			return
		}
		sealedPaths, err := lane.rotateLocked(p.opts)
		if err != nil {
			p.snapMu.Unlock()
			lane.mu.Unlock()
			done(err)
			continue
		}
		lane.snapshotting = true
		lane.fastBusy.Store(true)
		p.snapWG.Add(1)
		p.snapMu.Unlock()
		lane.mu.Unlock()

		go func(lane *journalLane, sealedPaths []string) {
			defer p.snapWG.Done()
			err := p.captureLane(lane, sealedPaths, state)
			lane.mu.Lock()
			lane.snapshotting = false
			lane.fastBusy.Store(false)
			lane.mu.Unlock()
			done(err)
		}(lane, sealedPaths)
	}
}

// rotateLocked seals the active segment and opens the next one. Caller
// holds lane.mu. Returns every sealed path the upcoming snapshot covers
// (including leftovers from earlier failed cycles). The next segment is
// opened *before* the active one is closed, so a transient open failure
// (ENOSPC, EMFILE) leaves the lane fully serviceable on its current
// segment and the rotation simply retries at the next cadence trigger.
func (l *journalLane) rotateLocked(opts JournalOptions) ([]string, error) {
	next, err := store.OpenWAL(filepath.Join(l.dir, laneSegmentName(l.idx, l.seq+1)), store.WALOptions{
		SyncEvery:      opts.SyncEvery,
		SyncEachAppend: opts.Fsync,
	})
	if err != nil {
		return nil, err
	}
	sealedPath := filepath.Join(l.dir, laneSegmentName(l.idx, l.seq))
	if err := l.wal.Close(); err != nil {
		// The sealed segment's data reached the OS on every append; the
		// failed close only loses the final fsync. It stays in the replay
		// set either way, so keep going on the fresh segment.
		l.wal = next
		l.seq++
		l.sealed = append(l.sealed, sealedPath)
		l.bytes = 0
		l.fastBytes.Store(0)
		l.fastRecords.Store(0)
		return nil, err
	}
	l.sealed = append(l.sealed, sealedPath)
	l.seq++
	l.wal = next
	l.bytes = 0
	l.fastBytes.Store(0)
	l.fastRecords.Store(0)
	return append([]string(nil), l.sealed...), nil
}

// captureLane writes the lane's snapshot (copy-on-write: no lane lock held
// during the state capture or the file write) and deletes the sealed
// segments it covers.
func (p *PooledJournal) captureLane(lane *journalLane, sealedPaths []string, state StateSource) error {
	recs := state(lane.idx, len(p.lanes))
	if err := store.WriteWALFile(filepath.Join(p.dir, laneSnapshotName(lane.idx)), recs); err != nil {
		return err
	}
	for _, path := range sealedPaths {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	lane.mu.Lock()
	lane.sealed = dropPaths(lane.sealed, sealedPaths)
	lane.mu.Unlock()
	return nil
}

func dropPaths(have, gone []string) []string {
	goneSet := make(map[string]bool, len(gone))
	for _, g := range gone {
		goneSet[g] = true
	}
	out := have[:0]
	for _, h := range have {
		if !goneSet[h] {
			out = append(out, h)
		}
	}
	return out
}

// Sync implements JournalBackend.
func (p *PooledJournal) Sync() error {
	var firstErr error
	for _, lane := range p.lanes {
		lane.mu.Lock()
		err := lane.wal.Sync()
		lane.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close implements JournalBackend: waits out in-flight snapshot captures,
// then syncs and closes every lane.
func (p *PooledJournal) Close() error {
	p.snapMu.Lock()
	p.closed = true
	p.snapMu.Unlock()
	p.snapWG.Wait()
	var firstErr error
	for _, lane := range p.lanes {
		if lane == nil || lane.wal == nil {
			continue
		}
		lane.mu.Lock()
		err := lane.wal.Close()
		lane.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
