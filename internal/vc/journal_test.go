package vc

import (
	"bytes"
	"context"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/store"
	"ddemos/internal/transport"
	"ddemos/internal/wire"
)

// journaledCluster builds a 4-node sim cluster with per-node journals over
// a mildly lossy link.
func journaledCluster(t *testing.T, numBallots int) *cluster {
	t.Helper()
	return newSimCluster(t, 1, nil, numBallots, 4,
		transport.LinkProfile{Latency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond},
		rawStack, true)
}

// simVote submits (serial, part, option) at node `at` under a virtual
// deadline.
func (c *cluster) simVote(serial uint64, part ballot.PartID, option, at int) ([]byte, error) {
	code, err := c.data.Ballots[serial-1].CodeFor(part, option)
	if err != nil {
		c.t.Fatal(err)
	}
	ctx, cancel := c.drv.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return c.node(at).SubmitVote(ctx, serial, code)
}

func TestRecoverRestoresVotedStateAndReceipt(t *testing.T) {
	c := journaledCluster(t, 3)
	r1, err := c.simVote(1, ballot.PartA, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Crash node 0 and restart it from its journal. The in-memory state of
	// the stopped incarnation is the reference: everything it held must be
	// journaled by the time Stop returns.
	old := c.node(0)
	c.StopNode(0)
	wantHash := old.StateHash()
	c.RestartNode(0)
	if got := c.node(0).StateHash(); got != wantHash {
		t.Fatal("recovered state hash differs from pre-crash state")
	}
	// Receipt stability: resubmitting the same code at the restarted node
	// must return the identical receipt, straight from recovered state.
	r2, err := c.simVote(1, ballot.PartA, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r2) {
		t.Fatalf("receipt changed across restart: %x != %x", r1, r2)
	}
	// A different code must still be refused after recovery.
	if _, err := c.simVote(1, ballot.PartB, 1, 0); err == nil {
		t.Fatal("conflicting code accepted after restart")
	}
	if s := old.Metrics(); s.JournalRecords == 0 {
		t.Fatal("the pre-crash incarnation journaled no transitions")
	}
}

func TestRecoverTwiceIsIdempotent(t *testing.T) {
	c := journaledCluster(t, 2)
	if _, err := c.simVote(1, ballot.PartA, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.simVote(2, ballot.PartB, 0, 1); err != nil {
		t.Fatal(err)
	}
	c.StopNode(0)
	c.RestartNode(0)
	h1 := c.node(0).StateHash()
	c.StopNode(0)
	c.RestartNode(0)
	h2 := c.node(0).StateHash()
	if h1 != h2 {
		t.Fatal("recover is not idempotent: state hashes differ")
	}
}

// journalDirNode builds an unstarted node recovered from dir — the harness
// for synthetic-journal replay tests.
func journalDirNode(t *testing.T, c *cluster, idx int, dir string) *Node {
	t.Helper()
	node, err := New(Config{
		Init:     c.data.VC[idx],
		Endpoint: c.net.Endpoint(transport.NodeID(90 + idx)), //nolint:gosec // test id
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Recover(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Stop)
	return node
}

// appendRaw writes pre-encoded journal records straight into dir's WAL.
func appendRaw(t *testing.T, dir string, recs ...[]byte) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o700); err != nil {
		t.Fatal(err)
	}
	w, err := store.OpenWAL(filepath.Join(dir, journalWALFile), store.WALOptions{SyncEachAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// syntheticRecords builds a consistent transition history for ballot 1 of
// the test election: endorsed, pending under a (unverified — replay trusts
// its own journal) cert, two shares, voted.
func syntheticRecords(code []byte) (recs [][]byte) {
	cert := &wire.UCert{Serial: 1, Code: code, Sigs: []wire.SigEntry{
		{Signer: 0, Sig: bytes.Repeat([]byte{1}, 64)},
		{Signer: 1, Sig: bytes.Repeat([]byte{2}, 64)},
		{Signer: 2, Sig: bytes.Repeat([]byte{3}, 64)},
	}}
	receipt := bytes.Repeat([]byte{0xAB}, 8)
	return [][]byte{
		encEndorsed(1, code),
		encPending(1, code, 0, 1, cert),
		encShare(1, 1, big.NewInt(11)),
		encShare(1, 2, big.NewInt(22)),
		encVoted(1, code, receipt),
	}
}

func TestReplayDuplicateRecordsIsIdempotent(t *testing.T) {
	c := journaledCluster(t, 2)
	code, err := c.data.Ballots[0].CodeFor(ballot.PartA, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := syntheticRecords(code)
	clean := filepath.Join(t.TempDir(), "clean")
	appendRaw(t, clean, recs...)
	// Duplicate every record, twice over, interleaved out of order.
	dup := filepath.Join(t.TempDir(), "dup")
	shuffled := [][]byte{recs[3], recs[0], recs[1], recs[2], recs[3], recs[4]}
	shuffled = append(shuffled, recs...)
	shuffled = append(shuffled, recs[4], recs[2])
	appendRaw(t, dup, shuffled...)

	n1 := journalDirNode(t, c, 0, clean)
	n2 := journalDirNode(t, c, 1, dup)
	if n1.StateHash() != n2.StateHash() {
		t.Fatal("duplicated+reordered journal produced different state")
	}
	status, used := n2.BallotStatus(1)
	if status != Voted || !bytes.Equal(used, code) {
		t.Fatalf("replayed state: status=%v code=%x", status, used)
	}
	st := n2.state(1)
	st.mu.Lock()
	shares, receipt := len(st.shares), st.receipt
	st.mu.Unlock()
	if shares != 2 {
		t.Fatalf("duplicate shares applied %d times", shares)
	}
	if !bytes.Equal(receipt, bytes.Repeat([]byte{0xAB}, 8)) {
		t.Fatal("replayed receipt differs")
	}
}

func TestReplaySnapshotLogDisagreement(t *testing.T) {
	// A crash between snapshot rename and log truncation leaves a snapshot
	// that already covers records still sitting in the log. Replay must
	// treat the overlap as no-ops.
	c := journaledCluster(t, 2)
	code, err := c.data.Ballots[0].CodeFor(ballot.PartB, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := syntheticRecords(code)
	dir := filepath.Join(t.TempDir(), "overlap")
	if err := os.MkdirAll(dir, 0o700); err != nil {
		t.Fatal(err)
	}
	// Snapshot holds the first four transitions; the log holds all five.
	if err := store.WriteWALFile(filepath.Join(dir, journalSnapshotFile), recs[:4]); err != nil {
		t.Fatal(err)
	}
	appendRaw(t, dir, recs...)

	clean := filepath.Join(t.TempDir(), "clean")
	appendRaw(t, clean, recs...)
	n1 := journalDirNode(t, c, 0, clean)
	n2 := journalDirNode(t, c, 1, dir)
	if n1.StateHash() != n2.StateHash() {
		t.Fatal("snapshot+log overlap produced different state than the plain log")
	}
}

func TestReplayTornTailKeepsPrefix(t *testing.T) {
	c := journaledCluster(t, 2)
	code, err := c.data.Ballots[0].CodeFor(ballot.PartA, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := syntheticRecords(code)
	dir := filepath.Join(t.TempDir(), "torn")
	appendRaw(t, dir, recs...)
	// Tear the final (voted) record in half.
	path := filepath.Join(dir, journalWALFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o600); err != nil {
		t.Fatal(err)
	}
	n := journalDirNode(t, c, 0, dir)
	status, used := n.BallotStatus(1)
	if status != Pending || !bytes.Equal(used, code) {
		t.Fatalf("torn-tail replay: status=%v code=%x (want Pending with the certified code)", status, used)
	}
	// The next incarnation appends after the tear: recover again and the
	// log must still be usable.
	n.Stop()
	n2 := journalDirNode(t, c, 1, dir)
	if _, used := n2.BallotStatus(1); !bytes.Equal(used, code) {
		t.Fatal("second recovery after tear lost the certified code")
	}
}

func TestReplayRejectsGarbageRecord(t *testing.T) {
	c := journaledCluster(t, 2)
	dir := filepath.Join(t.TempDir(), "garbage")
	// A record with a valid CRC but an unknown kind byte: not a tear —
	// version skew or a foreign file — so recovery must fail loudly.
	appendRaw(t, dir, []byte{0x7F, 1, 2, 3})
	node, err := New(Config{
		Init:     c.data.VC[0],
		Endpoint: c.net.Endpoint(transport.NodeID(95)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	if err := node.Recover(dir); err == nil {
		t.Fatal("garbage journal record must fail recovery")
	}
}

func TestSnapshotTruncatesLogAndRecovers(t *testing.T) {
	c := journaledCluster(t, 2)
	code, err := c.data.Ballots[0].CodeFor(ballot.PartA, 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "snap")
	node, err := New(Config{
		Init:     c.data.VC[0],
		Endpoint: c.net.Endpoint(transport.NodeID(96)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	if err := node.RecoverWithOptions(dir, JournalOptions{SnapshotEvery: 4}); err != nil {
		t.Fatal(err)
	}
	// Apply + journal a history long enough to cross the threshold twice.
	recs := syntheticRecords(code)
	for round := 0; round < 3; round++ {
		for _, rec := range recs {
			if err := node.applyJournalRecord(rec); err != nil {
				t.Fatal(err)
			}
			node.journalAppend(rec)
		}
	}
	if s := node.Metrics(); s.Snapshots == 0 {
		t.Fatal("snapshot threshold never triggered")
	}
	if _, err := os.Stat(filepath.Join(dir, journalSnapshotFile)); err != nil {
		t.Fatalf("no snapshot file: %v", err)
	}
	nWal, err := store.ReplayWAL(filepath.Join(dir, journalWALFile), nil)
	if err != nil {
		t.Fatal(err)
	}
	if nWal >= 15 {
		t.Fatalf("log not truncated: %d records", nWal)
	}
	want := node.StateHash()
	node.Stop()
	n2 := journalDirNode(t, c, 1, dir)
	if n2.StateHash() != want {
		t.Fatal("snapshot+log recovery produced different state")
	}
}

func TestVSCResultStableAcrossRestart(t *testing.T) {
	c := journaledCluster(t, 4)
	for serial := uint64(1); serial <= 3; serial++ {
		if _, err := c.simVote(serial, ballot.PartA, int(serial)%2, int(serial)%4); err != nil {
			t.Fatal(err)
		}
	}
	sets := make([][]VotedBallot, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := c.drv.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			set, err := c.node(i).VoteSetConsensus(ctx)
			if err != nil {
				t.Errorf("node %d consensus: %v", i, err)
				return
			}
			sets[i] = set
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// Restart node 0: its recovered consensus result must be byte-identical
	// without touching the network (the peers are done with consensus and
	// would not answer a rerun).
	c.StopNode(0)
	c.RestartNode(0)
	ctx, cancel := c.drv.WithTimeout(context.Background(), time.Second)
	defer cancel()
	again, err := c.node(0).VoteSetConsensus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(sets[0]) {
		t.Fatalf("recovered set has %d ballots, want %d", len(again), len(sets[0]))
	}
	for i := range again {
		if again[i].Serial != sets[0][i].Serial || !bytes.Equal(again[i].Code, sets[0][i].Code) {
			t.Fatalf("recovered set differs at %d", i)
		}
	}
}

func TestJournaledElectionMatchesMemoryOnly(t *testing.T) {
	// The journal must not change protocol outcomes: the same seeded
	// election, journaled and memory-only, issues the same receipts.
	run := func(journaled bool) map[uint64][]byte {
		receipts := make(map[uint64][]byte)
		t.Run(fmt.Sprintf("journaled=%v", journaled), func(t *testing.T) {
			c := newSimCluster(t, 7, nil, 4, 4,
				transport.LinkProfile{Latency: 200 * time.Microsecond}, rawStack, journaled)
			for serial := uint64(1); serial <= 4; serial++ {
				r, err := c.simVote(serial, ballot.PartB, int(serial)%2, int(serial)%4)
				if err != nil {
					t.Fatal(err)
				}
				receipts[serial] = r
			}
		})
		return receipts
	}
	with := run(true)
	without := run(false)
	for serial, r := range with {
		if !bytes.Equal(r, without[serial]) {
			t.Fatalf("ballot %d: journaled receipt differs from memory-only", serial)
		}
	}
}
