package vc

import (
	"sync/atomic"
	"time"

	"ddemos/internal/store"
)

// Metrics collects the node's operational counters. The per-step timing
// sums instrument the liveness analysis of §IV-A (Table I): EndorseNanos
// covers vote receipt through UCERT formation, VoteNanos the full
// receipt-issuing path.
type Metrics struct {
	VotesAccepted atomic.Int64
	BadMessages   atomic.Int64
	BadShares     atomic.Int64
	SendErrors    atomic.Int64
	Recoveries    atomic.Int64

	JournalRecords atomic.Int64 // transitions journaled to the WAL
	JournalErrors  atomic.Int64 // failed journal appends/syncs (alarm on this)
	Snapshots      atomic.Int64 // snapshot + log-truncation cycles
	StrictRefusals atomic.Int64 // acks refused under Policy: Strict

	EndorseNanos atomic.Int64 // cumulative endorsement-phase time (responder)
	EndorseCount atomic.Int64
	VoteNanos    atomic.Int64 // cumulative full vote time (responder)
	VoteCount    atomic.Int64
}

func (m *Metrics) observeEndorse(d time.Duration) {
	m.EndorseNanos.Add(int64(d))
	m.EndorseCount.Add(1)
}

func (m *Metrics) observeVote(d time.Duration) {
	m.VoteNanos.Add(int64(d))
	m.VoteCount.Add(1)
}

// Snapshot is a point-in-time copy of the metrics.
type Snapshot struct {
	VotesAccepted int64
	BadMessages   int64
	BadShares     int64
	SendErrors    int64
	Recoveries    int64

	JournalRecords int64
	JournalErrors  int64
	Snapshots      int64
	StrictRefusals int64

	// Ballot-store cache counters, populated when the node's store is a
	// store.Cached (zero otherwise). StoreShared counts misses that joined
	// another Get's in-flight read — the single-flight win.
	StoreHits      int64
	StoreMisses    int64
	StoreShared    int64
	StoreEvictions int64
	StoreBytes     int64

	AvgEndorse time.Duration
	AvgVote    time.Duration
}

// Metrics returns a snapshot of the node's counters.
func (n *Node) Metrics() Snapshot {
	s := Snapshot{
		VotesAccepted: n.metrics.VotesAccepted.Load(),
		BadMessages:   n.metrics.BadMessages.Load(),
		BadShares:     n.metrics.BadShares.Load(),
		SendErrors:    n.metrics.SendErrors.Load(),
		Recoveries:    n.metrics.Recoveries.Load(),

		JournalRecords: n.metrics.JournalRecords.Load(),
		JournalErrors:  n.metrics.JournalErrors.Load(),
		Snapshots:      n.metrics.Snapshots.Load(),
		StrictRefusals: n.metrics.StrictRefusals.Load(),
	}
	if c, ok := n.st.(*store.Cached); ok {
		cs := c.Stats()
		s.StoreHits = cs.Hits
		s.StoreMisses = cs.Misses
		s.StoreShared = cs.Shared
		s.StoreEvictions = cs.Evictions
		s.StoreBytes = cs.Bytes
	}
	if c := n.metrics.EndorseCount.Load(); c > 0 {
		s.AvgEndorse = time.Duration(n.metrics.EndorseNanos.Load() / c)
	}
	if c := n.metrics.VoteCount.Load(); c > 0 {
		s.AvgVote = time.Duration(n.metrics.VoteNanos.Load() / c)
	}
	return s
}
