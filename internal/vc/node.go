// Package vc implements the Vote Collection subsystem, the paper's central
// contribution (§III-E): a distributed set of Nv nodes (tolerating
// fv < Nv/3 Byzantine) that collects votes during election hours and hands
// each voter a receipt proving her vote was recorded as cast — without any
// cryptography on the voter's device.
//
// The voting protocol per ballot: the node a voter contacts (the responder)
// validates the vote code against its salted-hash commitments, multicasts
// ENDORSE, gathers Nv-fv ENDORSEMENT signatures into a uniqueness
// certificate (UCERT), then multicasts VOTE_P disclosing its receipt share.
// Every node that sees a valid VOTE_P joins in, and whoever collects Nv-fv
// valid shares reconstructs the receipt. The UCERT guarantees at most one
// vote code per ballot can ever be certified; receipt reconstruction
// requires Nv-fv shares, so any two reconstructions share an honest node —
// the pivot of the vote-set-consensus safety argument.
//
// There is no total ordering and no state machine replication: requests for
// different ballots proceed completely independently (§II).
package vc

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"

	"ddemos/internal/clock"
	"ddemos/internal/consensus"
	"ddemos/internal/crypto/group"
	"ddemos/internal/crypto/shamir"
	"ddemos/internal/crypto/votecode"
	"ddemos/internal/ea"
	"ddemos/internal/sig"
	"ddemos/internal/store"
	"ddemos/internal/transport"
	"ddemos/internal/wire"
)

// Sentinel errors surfaced to voters.
var (
	// ErrOutsideHours is returned outside the election window.
	ErrOutsideHours = errors.New("vc: outside election hours")
	// ErrUnknownBallot is returned for serials not in this election.
	ErrUnknownBallot = errors.New("vc: unknown ballot serial")
	// ErrInvalidCode is returned when a vote code doesn't match any line.
	ErrInvalidCode = errors.New("vc: invalid vote code")
	// ErrAlreadyVoted is returned when the ballot is bound to another code.
	ErrAlreadyVoted = errors.New("vc: ballot already used with a different vote code")
	// ErrStopped is returned after the node shuts down.
	ErrStopped = errors.New("vc: node stopped")
)

// endorseDomain is the signature domain of ENDORSEMENT messages.
const endorseDomain = "ddemos/v1/endorse"

// voteSetDomain is the signature domain for the final vote set pushed to BB.
const voteSetDomain = "ddemos/v1/vote-set"

// Byzantine selects a fault-injection behaviour for testing the protocol's
// tolerance thresholds. The zero value is honest.
type Byzantine int

// Byzantine behaviours.
const (
	// Honest follows the protocol.
	Honest Byzantine = iota
	// Equivocator endorses every code it is asked to, violating its
	// uniqueness duty (the attack UCERTs defend against).
	Equivocator
	// ShareCorruptor sends garbage receipt shares in VOTE_P.
	ShareCorruptor
	// ConsensusLiar flips all its inputs to vote-set consensus.
	ConsensusLiar
)

// Config assembles a VC node.
type Config struct {
	Init *ea.VCInit
	// Store defaults to an in-memory store built from Init.Ballots.
	Store store.Store
	// Endpoint carries inter-VC traffic. Node i must be network id i.
	Endpoint transport.Endpoint
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Coin defaults to a hash coin derived from the election ID.
	Coin consensus.Coin
	// Engine selects the vote-set-consensus engine (see ParseEngine);
	// defaults to the paper's interlocked protocol.
	Engine EngineFactory
	// Byzantine selects fault injection (tests only).
	Byzantine Byzantine
	// Workers sizes the message-processing pool (default 8).
	Workers int
}

// Node is one Vote Collector.
type Node struct {
	manifest ea.Manifest
	self     uint16
	nv, fv   int
	hv       int // Nv - fv: endorsement / share threshold
	priv     ed25519.PrivateKey
	eaPub    ed25519.PublicKey
	vcPubs   []ed25519.PublicKey
	mskShare ea.MskShare
	st       store.Store
	ep       transport.Endpoint
	clk      clock.Clock
	coin     consensus.Coin
	engine   EngineFactory
	byz      Byzantine
	peers    []transport.NodeID

	shards [64]shard

	endorseMu  sync.Mutex
	collectors map[collectorKey]*endorseCollector

	vscMu      sync.Mutex
	vsc        *vscEngine
	vscBuffer  []bufferedMsg
	vscDone    bool          // vote-set consensus completed (possibly recovered)
	vscDurable bool          // the vsc record landed in the journal (Strict duty)
	vscResult  []VotedBallot // the agreed set, stable across restarts

	// journal, when attached via Recover/RecoverBackend, logs every ballot
	// state transition before the node acts on it (DESIGN.md, "Durability
	// and recovery"). nil = memory-only node. journalPolicy decides whether
	// a failed append refuses the dependent ack (Strict) or counts and
	// continues (Available).
	journal       JournalBackend
	journalPolicy AckPolicy

	metrics Metrics

	workers []chan []job
	done    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

type shard struct {
	mu      sync.Mutex
	ballots map[uint64]*ballotState
}

type collectorKey struct {
	serial uint64
	code   string
}

type endorseCollector struct {
	sigs map[uint16][]byte
	need int
	done chan struct{}
}

type bufferedMsg struct {
	from uint16
	msg  wire.Message
}

type job struct {
	from uint16
	msg  wire.Message
}

// ballotState is the runtime state of one ballot on this node.
type ballotState struct {
	mu           sync.Mutex
	status       Status
	endorsedCode []byte // the single code this node will endorse
	usedCode     []byte
	part         uint8
	row          int
	cert         *wire.UCert
	shares       map[uint32]*big.Int
	sentVoteP    bool
	receipt      []byte
	waiters      []chan voteOutcome

	// Durability marks, maintained for Strict-policy nodes: set when the
	// endorsement / certified-binding / receipt record landed in the
	// journal (or replayed from it). A Strict node re-attempts the append
	// before serving the corresponding fast path or external action, so an
	// ack can never ride on a record a failed journal silently dropped.
	endorsedDurable bool
	bindingDurable  bool
	receiptDurable  bool
}

type voteOutcome struct {
	receipt []byte
	err     error
}

// Status is a ballot's voting-protocol state (§III-E).
type Status uint8

// Ballot states.
const (
	NotVoted Status = iota
	Pending
	Voted
)

// New builds a node from its initialization data.
func New(cfg Config) (*Node, error) {
	if cfg.Init == nil {
		return nil, errors.New("vc: missing init data")
	}
	if cfg.Endpoint == nil {
		return nil, errors.New("vc: missing endpoint")
	}
	man := cfg.Init.Manifest
	n := &Node{
		manifest: man,
		self:     uint16(cfg.Init.Index), //nolint:gosec // <= 64
		nv:       man.NumVC,
		fv:       man.FaultyVC(),
		hv:       man.ReceiptThreshold(),
		priv:     cfg.Init.Private,
		eaPub:    man.EAPublic,
		vcPubs:   man.VCPublics,
		mskShare: cfg.Init.Msk,
		st:       cfg.Store,
		ep:       cfg.Endpoint,
		clk:      cfg.Clock,
		coin:     cfg.Coin,
		engine:   cfg.Engine,
		byz:      cfg.Byzantine,
		done:     make(chan struct{}),

		collectors: make(map[collectorKey]*endorseCollector),
	}
	if n.st == nil {
		n.st = store.NewMem(cfg.Init.Ballots)
	}
	if n.clk == nil {
		n.clk = clock.Real{}
	}
	if n.coin == nil {
		n.coin = consensus.NewHashCoin([]byte(man.ElectionID))
	}
	if n.engine == nil {
		n.engine = InterlockedEngine
	}
	for i := range n.shards {
		n.shards[i].ballots = make(map[uint64]*ballotState)
	}
	n.peers = make([]transport.NodeID, n.nv)
	for i := range n.peers {
		n.peers[i] = transport.NodeID(i) //nolint:gosec // <= 64
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	n.workers = make([]chan []job, workers)
	for i := range n.workers {
		n.workers[i] = make(chan []job, 256)
	}
	return n, nil
}

// Start launches the message pump and worker pool.
func (n *Node) Start() {
	for i := range n.workers {
		n.wg.Add(1)
		go n.workerLoop(n.workers[i])
	}
	n.wg.Add(1)
	go n.pump()
}

// Stop shuts the node down and waits for its goroutines. An attached
// journal is synced and closed, so a clean stop loses nothing and a later
// Recover on the same directory resumes exactly here.
func (n *Node) Stop() {
	n.stopped.Do(func() {
		close(n.done)
		_ = n.ep.Close()
	})
	n.wg.Wait()
	if n.journal != nil {
		if err := n.journal.Close(); err != nil {
			n.metrics.JournalErrors.Add(1)
		}
	}
}

// Index returns the node's 0-based index.
func (n *Node) Index() int { return int(n.self) }

// MskShare returns the node's signed master-key share (pushed to BB nodes
// after vote-set consensus).
func (n *Node) MskShare() ea.MskShare { return n.mskShare }

// pumpDrainMax bounds how many queued envelopes one pump iteration drains
// into a single dispatch round.
const pumpDrainMax = 256

// maxStagedJobs bounds the decoded-but-undispatched ballot messages of one
// round: a single Batch envelope can unpack into thousands of messages, so
// memory must be bounded by messages, not envelopes. (One envelope can still
// stage up to wire's per-batch frame cap; this bounds the amplification
// across envelopes.)
const maxStagedJobs = 4096

// pump decodes frames and routes them: ballot-protocol messages to the
// serial-affine worker pool (per-ballot ordering, parallel across ballots),
// consensus traffic to the vote-set-consensus engine. This is the dispatch
// stage of the batched pipeline: wire.Batch envelopes are split inline, and
// everything already queued on the endpoint is drained greedily, so each
// worker receives its share of a whole receive burst in one channel
// operation and can validate it per lock acquisition.
func (n *Node) pump() {
	defer n.wg.Done()
	byWorker := make([][]job, len(n.workers))
	for {
		select {
		case <-n.done:
			return
		case env, ok := <-n.ep.Recv():
			if !ok {
				return
			}
			staged := n.ingest(env, byWorker)
			drain := true
			for drained := 1; drain && drained < pumpDrainMax && staged < maxStagedJobs; drained++ {
				select {
				case env, ok = <-n.ep.Recv():
					if !ok {
						n.dispatchBatches(byWorker)
						return
					}
					staged += n.ingest(env, byWorker)
				default:
					drain = false
				}
			}
			n.dispatchBatches(byWorker)
		}
	}
}

// ingest decodes one envelope — splitting Batch envelopes from peers that
// coalesce even when our own endpoint stack does not unbatch — and stages
// its messages for dispatch, returning how many jobs it staged.
func (n *Node) ingest(env transport.Envelope, byWorker [][]job) int {
	from := uint16(env.From) //nolint:gosec // validated below
	if int(from) >= n.nv {
		n.metrics.BadMessages.Add(1)
		return 0
	}
	msg, err := wire.Decode(env.Payload)
	if err != nil {
		n.metrics.BadMessages.Add(1)
		return 0
	}
	if b, ok := msg.(*wire.Batch); ok {
		msgs, err := b.Unpack()
		if err != nil {
			n.metrics.BadMessages.Add(1)
			return 0
		}
		staged := 0
		for _, m := range msgs {
			staged += n.stage(from, m, byWorker)
		}
		return staged
	}
	return n.stage(from, msg, byWorker)
}

// stage routes one decoded message: ballot traffic to its serial's worker
// batch (returning 1), consensus traffic inline to the vote-set-consensus
// engine.
func (n *Node) stage(from uint16, msg wire.Message, byWorker [][]job) int {
	var serial uint64
	switch m := msg.(type) {
	case *wire.Endorse:
		serial = m.Serial
	case *wire.Endorsement:
		serial = m.Serial
	case *wire.VoteP:
		serial = m.Serial
	case *wire.Announce, *wire.Consensus, *wire.RecoverRequest, *wire.RecoverResponse, *wire.VSCFinal,
		*wire.RBCEcho, *wire.RBCReady, *wire.ABA:
		n.routeConsensus(from, msg)
		return 0
	default:
		n.metrics.BadMessages.Add(1)
		return 0
	}
	w := serial % uint64(len(n.workers))
	byWorker[w] = append(byWorker[w], job{from, msg})
	return 1
}

// dispatchBatches hands each worker its staged jobs in one send and resets
// the staging slices for the next round.
func (n *Node) dispatchBatches(byWorker [][]job) {
	for i, jobs := range byWorker {
		if len(jobs) == 0 {
			continue
		}
		batch := make([]job, len(jobs))
		copy(batch, jobs)
		byWorker[i] = jobs[:0]
		select {
		case n.workers[i] <- batch:
		case <-n.done:
			return
		}
	}
}

func (n *Node) workerLoop(ch chan []job) {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case batch := <-ch:
			n.processBatch(batch)
		}
	}
}

// processBatch handles one worker batch. ENDORSEMENTs commute (each only
// deposits a signature into a waiting collector) and are validated together;
// ENDORSEs run in arrival order; VOTE_Ps are validated as one batch and
// applied per-serial under a single state-lock acquisition. Relative
// reordering across these classes is indistinguishable from network
// reordering, which the protocol already tolerates.
func (n *Node) processBatch(batch []job) {
	var ends, votePs []job
	for _, j := range batch {
		switch m := j.msg.(type) {
		case *wire.Endorsement:
			ends = append(ends, j)
		case *wire.Endorse:
			n.onEndorse(j.from, m)
		case *wire.VoteP:
			votePs = append(votePs, j)
		}
	}
	if len(ends) > 0 {
		n.onEndorsementBatch(ends)
	}
	if len(votePs) > 0 {
		n.onVotePBatch(votePs)
	}
}

// state returns (creating if needed) the runtime state for a serial.
func (n *Node) state(serial uint64) *ballotState {
	sh := &n.shards[serial%64]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.ballots[serial]
	if !ok {
		st = &ballotState{}
		sh.ballots[serial] = st
	}
	return st
}

// peekState returns the runtime state for a serial, or nil, without
// allocating — unverified messages must not materialize persistent state.
func (n *Node) peekState(serial uint64) *ballotState {
	sh := &n.shards[serial%64]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.ballots[serial]
}

// withinHours checks the paper's only clock dependency.
func (n *Node) withinHours() bool {
	now := n.clk.Now()
	return !now.Before(n.manifest.VotingStart) && now.Before(n.manifest.VotingEnd)
}

// locate validates a vote code against the ballot's hash commitments,
// returning the store data and the (part, row) of the matching line.
func (n *Node) locate(serial uint64, code []byte) (*store.BallotData, uint8, int, error) {
	bd, err := n.st.Get(serial)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%w: %d", ErrUnknownBallot, serial)
	}
	for part := 0; part < 2; part++ {
		for row := range bd.Lines[part] {
			l := &bd.Lines[part][row]
			if votecode.VerifyCommit(l.Hash, code, l.Salt[:]) {
				return bd, uint8(part), row, nil //nolint:gosec // part < 2
			}
		}
	}
	return nil, 0, 0, ErrInvalidCode
}

// ownShare extracts and validates this node's receipt share for a line.
func (n *Node) ownShare(bd *store.BallotData, part uint8, row int) (shamir.Share, []byte, error) {
	l := &bd.Lines[part][row]
	v, err := group.DecodeScalar(l.Share[:])
	if err != nil {
		return shamir.Share{}, nil, fmt.Errorf("vc: corrupt stored share: %w", err)
	}
	return shamir.Share{Index: uint32(n.self) + 1, Value: v}, l.ShareSig[:], nil
}

// SubmitVote is the voter-facing entry point (the responder role). It
// returns the reconstructed receipt, blocking until the protocol completes
// or ctx expires.
func (n *Node) SubmitVote(ctx context.Context, serial uint64, code []byte) ([]byte, error) {
	t0 := time.Now()
	if !n.withinHours() {
		return nil, ErrOutsideHours
	}
	bd, part, row, err := n.locate(serial, code)
	if err != nil {
		return nil, err
	}
	st := n.state(serial)

	var newlyEndorsed, endorseDurable bool
	st.mu.Lock()
	switch st.status {
	case Voted:
		if bytes.Equal(st.usedCode, code) {
			r := st.receipt
			durable := st.receiptDurable
			st.mu.Unlock()
			if err := n.ensureReceiptDurable(st, serial, code, r, durable); err != nil {
				return nil, err
			}
			return r, nil
		}
		st.mu.Unlock()
		return nil, ErrAlreadyVoted
	case Pending:
		if !bytes.Equal(st.usedCode, code) {
			st.mu.Unlock()
			return nil, ErrAlreadyVoted
		}
		if n.strictJournal() && !st.bindingDurable {
			// The binding append failed on an earlier flow, so no VOTE_P
			// necessarily ever left this node — waiting would hang on a
			// disclosure nobody made. Fall through and re-drive the flow:
			// collection is idempotent, and the re-binding arm below
			// re-journals and re-discloses.
			endorseDurable = st.endorsedDurable
			break
		}
		// Another flow is reconstructing this same vote: wait with it.
		ch := make(chan voteOutcome, 1)
		st.waiters = append(st.waiters, ch)
		st.mu.Unlock()
		return n.awaitOutcome(ctx, ch)
	case NotVoted:
		if st.endorsedCode != nil && !bytes.Equal(st.endorsedCode, code) {
			st.mu.Unlock()
			return nil, ErrAlreadyVoted
		}
		newlyEndorsed = st.endorsedCode == nil
		st.endorsedCode = append([]byte(nil), code...)
		endorseDurable = st.endorsedDurable
	}
	st.mu.Unlock()
	if newlyEndorsed || (n.strictJournal() && !endorseDurable) {
		// Journal the endorsement duty before asking peers to match it.
		if err := n.journalAppend(encEndorsed(serial, code)); err != nil {
			if n.strictJournal() {
				n.metrics.StrictRefusals.Add(1)
				return nil, fmt.Errorf("vc: endorsement not durable: %w", err)
			}
		} else {
			st.mu.Lock()
			st.endorsedDurable = true
			st.mu.Unlock()
		}
	}

	// Collect Nv-fv endorsements (ours included).
	cert, err := n.collectEndorsements(ctx, serial, code)
	if err != nil {
		return nil, err
	}
	n.metrics.observeEndorse(time.Since(t0))

	share, shareSig, err := n.ownShare(bd, part, row)
	if err != nil {
		return nil, err
	}

	ch := make(chan voteOutcome, 1)
	var recs [][]byte
	st.mu.Lock()
	switch {
	case st.status == NotVoted:
		st.status = Pending
		st.usedCode = append([]byte(nil), code...)
		st.part, st.row = part, row
		st.cert = cert
		st.shares = map[uint32]*big.Int{share.Index: share.Value}
		st.sentVoteP = true
		recs = append(recs,
			encPending(serial, code, part, row, cert),
			encShare(serial, share.Index, share.Value))
	case n.strictJournal() && !st.bindingDurable &&
		st.status == Pending && bytes.Equal(st.usedCode, code):
		// A racing flow bound the ballot but its binding append failed (or
		// has not landed): re-attempt the records before this flow's
		// VOTE_P can leave, or a restart would forget the disclosure. The
		// (part, row) come from this flow's own locate() — the state's pair
		// is unset when the binding arrived via an adopted cert.
		recs = append(recs,
			encPending(serial, st.usedCode, part, row, st.cert),
			encShare(serial, share.Index, share.Value))
	}
	switch {
	case st.status == Voted && bytes.Equal(st.usedCode, code):
		// A racing applyShares completed the ballot while we collected
		// endorsements. Same durability duty as the top-of-function fast
		// path: Strict re-attempts the voted record before release.
		r := st.receipt
		durable := st.receiptDurable
		st.mu.Unlock()
		if err := n.ensureReceiptDurable(st, serial, code, r, durable); err != nil {
			return nil, err
		}
		return r, nil
	case !bytes.Equal(st.usedCode, code):
		st.mu.Unlock()
		return nil, ErrAlreadyVoted
	default:
		st.waiters = append(st.waiters, ch)
		st.mu.Unlock()
	}

	// The certified binding and our disclosed share are journaled before
	// VOTE_P leaves: once a peer can act on our share, a restart must
	// remember we bound the ballot and disclosed. A Strict node withholds
	// the disclosure (and fails the submission) when the records did not
	// land; the next attempt re-journals them.
	bindErr := n.journalAppend(recs...)
	if bindErr != nil && n.strictJournal() {
		n.metrics.StrictRefusals.Add(1)
		// No VOTE_P without the records behind it. Resetting sentVoteP lets
		// a peer's VOTE_P re-trigger disclosure after the journal heals (the
		// mirror of the applyShares failure path); a client resubmission
		// re-drives the flow through the Pending fall-through above.
		st.mu.Lock()
		st.sentVoteP = false
		st.mu.Unlock()
		return nil, fmt.Errorf("vc: vote binding not durable: %w", bindErr)
	}
	if len(recs) > 0 && bindErr == nil {
		st.mu.Lock()
		st.bindingDurable = true
		st.mu.Unlock()
	}
	n.multicastVoteP(serial, code, share, shareSig, cert)
	receipt, err := n.awaitOutcome(ctx, ch)
	if err == nil {
		n.metrics.observeVote(time.Since(t0))
		n.metrics.VotesAccepted.Add(1)
	}
	return receipt, err
}

// ensureReceiptDurable is the Strict fast-path duty before re-serving a
// receipt from memory: if the voted record was lost to an earlier failed
// append, re-attempt it — no release without a record a restart can replay.
// No-op under Available or when already durable.
func (n *Node) ensureReceiptDurable(st *ballotState, serial uint64, code, receipt []byte, durable bool) error {
	if !n.strictJournal() || durable {
		return nil
	}
	if err := n.journalAppend(encVoted(serial, code, receipt)); err != nil {
		n.metrics.StrictRefusals.Add(1)
		return fmt.Errorf("vc: receipt not durable: %w", err)
	}
	st.mu.Lock()
	st.receiptDurable = true
	st.mu.Unlock()
	return nil
}

func (n *Node) awaitOutcome(ctx context.Context, ch chan voteOutcome) ([]byte, error) {
	select {
	case out := <-ch:
		return out.receipt, out.err
	case <-ctx.Done():
		return nil, fmt.Errorf("vc: waiting for receipt: %w", ctx.Err())
	case <-n.done:
		return nil, ErrStopped
	}
}

// collectEndorsements multicasts ENDORSE and waits for Nv-fv valid
// signatures, returning the uniqueness certificate.
func (n *Node) collectEndorsements(ctx context.Context, serial uint64, code []byte) (*wire.UCert, error) {
	key := collectorKey{serial: serial, code: string(code)}
	n.endorseMu.Lock()
	col, exists := n.collectors[key]
	if !exists {
		col = &endorseCollector{sigs: make(map[uint16][]byte, n.hv), need: n.hv, done: make(chan struct{})}
		// Self-endorsement.
		col.sigs[n.self] = n.endorseSig(serial, code)
		n.collectors[key] = col
	}
	n.endorseMu.Unlock()

	// Multicast ENDORSE on every attempt, not only the collector-creating
	// one: a collector can outlive a timed-out collection (lost replies are
	// never retransmitted), and a retry must re-request or it waits forever.
	// Peers endorse idempotently and duplicate replies dedup, so the extra
	// multicast under benign same-code races is harmless.
	frame := wire.Encode(&wire.Endorse{Serial: serial, Code: code})
	if err := transport.Multicast(n.ep, n.peers, frame); err != nil {
		n.metrics.SendErrors.Add(1)
	}
	select {
	case <-col.done:
	case <-ctx.Done():
		return nil, fmt.Errorf("vc: collecting endorsements: %w", ctx.Err())
	case <-n.done:
		return nil, ErrStopped
	}
	n.endorseMu.Lock()
	cert := &wire.UCert{Serial: serial, Code: append([]byte(nil), code...)}
	for signer, sg := range col.sigs {
		cert.Sigs = append(cert.Sigs, wire.SigEntry{Signer: signer, Sig: sg})
		if len(cert.Sigs) == n.hv {
			break
		}
	}
	delete(n.collectors, key)
	n.endorseMu.Unlock()
	return cert, nil
}

func (n *Node) endorseSig(serial uint64, code []byte) []byte {
	return sig.Sign(n.priv, endorseDomain, []byte(n.manifest.ElectionID), sig.Uint64Bytes(serial), code)
}

// VerifyUCert checks a uniqueness certificate against the VC public keys.
func (n *Node) VerifyUCert(cert *wire.UCert) bool {
	return VerifyUCert(cert, n.manifest.ElectionID, n.vcPubs, n.hv)
}

// VerifyUCert checks that cert carries at least threshold distinct valid
// endorsement signatures.
func VerifyUCert(cert *wire.UCert, electionID string, vcPubs []ed25519.PublicKey, threshold int) bool {
	if cert == nil || len(cert.Sigs) < threshold {
		return false
	}
	seen := make(map[uint16]bool, len(cert.Sigs))
	valid := 0
	for _, e := range cert.Sigs {
		if int(e.Signer) >= len(vcPubs) || seen[e.Signer] {
			continue
		}
		seen[e.Signer] = true
		if sig.Verify(vcPubs[e.Signer], e.Sig, endorseDomain,
			[]byte(electionID), sig.Uint64Bytes(cert.Serial), cert.Code) {
			valid++
			if valid >= threshold {
				return true
			}
		}
	}
	return false
}

// onEndorse handles a responder's endorsement request: endorse iff we have
// not endorsed a different code for this ballot (an Equivocator endorses
// anything).
func (n *Node) onEndorse(from uint16, m *wire.Endorse) {
	if !n.withinHours() {
		return
	}
	if _, _, _, err := n.locate(m.Serial, m.Code); err != nil {
		return
	}
	st := n.state(m.Serial)
	var newlyEndorsed, endorseDurable bool
	st.mu.Lock()
	switch {
	case n.byz == Equivocator:
		// Sign regardless — the attack UCERT formation must defeat.
	case st.endorsedCode == nil && st.status == NotVoted:
		st.endorsedCode = append([]byte(nil), m.Code...)
		newlyEndorsed = true
	case !bytes.Equal(st.endorsedCode, m.Code) && !bytes.Equal(st.usedCode, m.Code):
		st.mu.Unlock()
		return
	}
	endorseDurable = st.endorsedDurable
	st.mu.Unlock()
	if newlyEndorsed || (n.strictJournal() && !endorseDurable && n.byz != Equivocator) {
		// The signature is a uniqueness promise: journal it before the
		// reply carries it away, or a restarted node could endorse a
		// different code for the same ballot. A Strict node stays silent
		// when the record did not land — no signature without durability.
		if err := n.journalAppend(encEndorsed(m.Serial, m.Code)); err != nil {
			if n.strictJournal() {
				n.metrics.StrictRefusals.Add(1)
				return
			}
		} else {
			st.mu.Lock()
			st.endorsedDurable = true
			st.mu.Unlock()
		}
	}
	reply := &wire.Endorsement{Serial: m.Serial, Code: m.Code, Signer: n.self, Sig: n.endorseSig(m.Serial, m.Code)}
	if err := n.ep.Send(transport.NodeID(from), wire.Encode(reply)); err != nil {
		n.metrics.SendErrors.Add(1)
	}
}

// onEndorsementBatch records a batch of endorsement signatures: every
// signature in the batch is checked with one sig.VerifyMany call (duplicates
// verified once, large batches fanned out across CPUs) and the survivors are
// recorded under a single endorseMu acquisition — the per-message
// verify-lock-record loop collapsed to one pass per receive batch.
func (n *Node) onEndorsementBatch(batch []job) {
	msgs := make([]*wire.Endorsement, 0, len(batch))
	items := make([]sig.Item, 0, len(batch))
	for _, j := range batch {
		m := j.msg.(*wire.Endorsement)
		if m.Signer != j.from || int(m.Signer) >= len(n.vcPubs) {
			continue
		}
		msgs = append(msgs, m)
		items = append(items, sig.Item{Pub: n.vcPubs[m.Signer], Sig: m.Sig, Parts: [][]byte{
			[]byte(n.manifest.ElectionID), sig.Uint64Bytes(m.Serial), m.Code,
		}})
	}
	ok := sig.VerifyMany(endorseDomain, items)
	var bad int64
	n.endorseMu.Lock()
	for i, m := range msgs {
		if !ok[i] {
			bad++
			continue
		}
		col, found := n.collectors[collectorKey{serial: m.Serial, code: string(m.Code)}]
		if !found {
			continue
		}
		if _, dup := col.sigs[m.Signer]; dup {
			continue
		}
		col.sigs[m.Signer] = m.Sig
		if len(col.sigs) == col.need {
			close(col.done)
		}
	}
	n.endorseMu.Unlock()
	if bad > 0 {
		n.metrics.BadMessages.Add(bad)
	}
}

// multicastVoteP discloses a receipt share (a ShareCorruptor corrupts it).
func (n *Node) multicastVoteP(serial uint64, code []byte, share shamir.Share, shareSig []byte, cert *wire.UCert) {
	value := group.ScalarBytes(share.Value)
	if n.byz == ShareCorruptor {
		value = make([]byte, 32)
		value[31] = 0x42
	}
	msg := &wire.VoteP{
		Serial:     serial,
		Code:       code,
		ShareIndex: share.Index,
		ShareValue: value,
		ShareSig:   shareSig,
		Cert:       *cert,
	}
	if err := transport.Multicast(n.ep, n.peers, wire.Encode(msg)); err != nil {
		n.metrics.SendErrors.Add(1)
	}
}

// votePCandidate carries one VOTE_P through the batch validation stages.
// cert is the certificate that actually passed VerifyUCert for this
// (serial, code) — not necessarily the bytes this message carried — or nil
// when the ballot state already holds a verified certificate.
type votePCandidate struct {
	from  uint16
	m     *wire.VoteP
	cert  *wire.UCert
	bd    *store.BallotData
	part  uint8
	row   int
	share shamir.Share
}

// onVotePBatch validates a batch of disclosed shares (UCERT first, per
// §III-E) and joins the disclosure round; reconstruction fires at Nv-fv
// shares. The batch path amortizes the two expensive steps: certificates the
// ballot state already accepted are not re-verified (every VOTE_P for a
// ballot carries the same UCERT), all EA share signatures are checked in one
// sig.VerifyMany pass, and each serial's shares are applied under a single
// state-lock acquisition.
func (n *Node) onVotePBatch(batch []job) {
	if !n.withinHours() {
		return
	}
	cands := make([]votePCandidate, 0, len(batch))
	items := make([]sig.Item, 0, len(batch))
	// The canonical burst is all Nv-1 peers disclosing for one ballot in a
	// single batch, every message carrying the identical UCERT: verify one
	// certificate per (serial, code) per batch and let every later
	// candidate reference the cert that actually verified — a candidate's
	// own (unverified) cert bytes are never stored or re-disclosed.
	certSeen := make(map[collectorKey]*wire.UCert, len(batch))
	for _, j := range batch {
		m := j.msg.(*wire.VoteP)
		if m.ShareIndex != uint32(j.from)+1 {
			continue // nodes may only disclose their own share
		}
		if m.Cert.Serial != m.Serial || !bytes.Equal(m.Cert.Code, m.Code) {
			n.metrics.BadMessages.Add(1)
			continue
		}
		// locate() validates (serial, code) against the ballot store before
		// anything touches n.state: garbage serials must not allocate
		// persistent ballot state.
		bd, part, row, err := n.locate(m.Serial, m.Code)
		if err != nil {
			continue
		}
		// Peek, never allocate: state is only created in applyShares, after
		// the cert and share signature both verified, preserving the old
		// path's validate-then-allocate order.
		var certKnown bool
		if st := n.peekState(m.Serial); st != nil {
			st.mu.Lock()
			certKnown = st.cert != nil && bytes.Equal(st.usedCode, m.Code)
			st.mu.Unlock()
		}
		certKey := collectorKey{serial: m.Serial, code: string(m.Code)}
		var cert *wire.UCert
		if !certKnown {
			if cert = certSeen[certKey]; cert == nil {
				if !n.VerifyUCert(&m.Cert) {
					n.metrics.BadMessages.Add(1)
					continue
				}
				c := m.Cert
				cert = &c
				certSeen[certKey] = cert
			}
		}
		shareVal, err := group.DecodeScalar(m.ShareValue)
		if err != nil {
			n.metrics.BadMessages.Add(1)
			continue
		}
		sh := shamir.Share{Index: m.ShareIndex, Value: shareVal}
		cands = append(cands, votePCandidate{from: j.from, m: m, cert: cert, bd: bd, part: part, row: row, share: sh})
		items = append(items, ea.ReceiptShareItem(n.eaPub, m.ShareSig,
			n.manifest.ElectionID, m.Serial, bd.Lines[part][row].Hash, sh))
	}
	if len(cands) == 0 {
		return
	}
	ok := sig.VerifyMany(ea.ReceiptShareDomain, items)

	// Group surviving shares by serial and apply each group in one state
	// visit; candidate order is preserved within a group.
	bySerial := make(map[uint64][]int, len(cands))
	var order []uint64
	for i := range cands {
		if !ok[i] {
			n.metrics.BadShares.Add(1)
			continue
		}
		serial := cands[i].m.Serial
		if _, seen := bySerial[serial]; !seen {
			order = append(order, serial)
		}
		bySerial[serial] = append(bySerial[serial], i)
	}
	for _, serial := range order {
		n.applyShares(serial, cands, bySerial[serial])
	}
}

// applyShares records a serial's batch of validated shares under one lock
// acquisition, disclosing our own share on first contact and reconstructing
// the receipt once Nv-fv shares are in. Transitions are journaled after the
// lock is released and before the acks (waiter notification, our VOTE_P):
// nothing leaves this node that a restart would forget.
func (n *Node) applyShares(serial uint64, cands []votePCandidate, idxs []int) {
	st := n.state(serial)
	var disclose, bound bool
	var ownSh shamir.Share
	var ownSig []byte
	var discloseCode []byte
	var discloseCert *wire.UCert
	var recs [][]byte

	st.mu.Lock()
	for _, i := range idxs {
		c := &cands[i]
		switch st.status {
		case NotVoted:
			if c.cert == nil {
				// certKnown candidates have no cert of their own; the
				// state they relied on implies status >= Pending, so this
				// branch is unreachable for them — drop defensively rather
				// than certify without a verified cert.
				continue
			}
			st.status = Pending
			st.usedCode = append([]byte(nil), c.m.Code...)
			st.part, st.row = c.part, c.row
			st.cert = c.cert
			st.shares = map[uint32]*big.Int{c.share.Index: c.share.Value}
			bound = true
			recs = append(recs,
				encPending(serial, c.m.Code, c.part, c.row, c.cert),
				encShare(serial, c.share.Index, c.share.Value))
		case Pending, Voted:
			if !bytes.Equal(st.usedCode, c.m.Code) {
				// Impossible with honest-majority UCERTs; drop defensively.
				n.metrics.BadMessages.Add(1)
				continue
			}
			if st.shares == nil {
				st.shares = make(map[uint32]*big.Int, n.hv)
			}
			if _, dup := st.shares[c.share.Index]; !dup {
				recs = append(recs, encShare(serial, c.share.Index, c.share.Value))
			}
			st.shares[c.share.Index] = c.share.Value
		}
		if !st.sentVoteP {
			st.sentVoteP = true
			own, sg, err := n.ownShare(c.bd, c.part, c.row)
			if err == nil {
				st.shares[own.Index] = own.Value
				recs = append(recs, encShare(serial, own.Index, own.Value))
				disclose = true
				ownSh, ownSig = own, sg
				discloseCode = st.usedCode
				discloseCert = st.cert
			}
		}
	}
	// Strict: a ballot whose binding records were lost to an earlier failed
	// append (bound here via a peer's VOTE_P, or adopted during consensus)
	// re-journals its certificate before anything else leaves for it — a
	// restart must never find disclosed shares without the binding behind
	// them. encUCert rather than encPending: an adopted cert has no known
	// (part, row), and replay recovers both from the next VOTE_P anyway.
	if n.strictJournal() && !bound && !st.bindingDurable && st.cert != nil {
		recs = append([][]byte{encUCert(serial, st.cert)}, recs...)
		bound = true
	}
	rec, notify, receipt := n.maybeReconstructLocked(serial, st)
	if rec != nil {
		recs = append(recs, rec)
	}
	st.mu.Unlock()

	err := n.journalAppend(recs...)
	if err != nil && n.strictJournal() {
		n.metrics.StrictRefusals.Add(1)
		// Strict: nothing leaves this node on a lost record — waiters get
		// the failure instead of a receipt, and our share stays undisclosed.
		// The receipt itself survives in memory; a later resubmission
		// re-attempts the append (the Voted fast path) once the journal
		// heals, and resetting sentVoteP lets the next incoming VOTE_P
		// re-trigger the disclosure (which re-journals the share first), so
		// a transient journal outage never suppresses this node's share
		// permanently.
		if disclose {
			st.mu.Lock()
			st.sentVoteP = false
			st.mu.Unlock()
		}
		err = fmt.Errorf("vc: receipt not durable: %w", err)
		for _, ch := range notify {
			ch <- voteOutcome{err: err}
		}
		return
	}
	if err == nil && (rec != nil || bound) {
		st.mu.Lock()
		if rec != nil {
			st.receiptDurable = true
		}
		if bound {
			st.bindingDurable = true
		}
		st.mu.Unlock()
	}
	for _, ch := range notify {
		ch <- voteOutcome{receipt: receipt}
	}
	if disclose {
		n.multicastVoteP(serial, discloseCode, ownSh, ownSig, discloseCert)
	}
}

// maybeReconstructLocked reconstructs the receipt once Nv-fv shares are in.
// Caller holds st.mu. Waiter notification is handed back to the caller (to
// run after the voted record is journaled, outside the lock): the receipt
// is an irrevocable promise to the voter, so it must be durable before it
// is released.
func (n *Node) maybeReconstructLocked(serial uint64, st *ballotState) (rec []byte, notify []chan voteOutcome, receipt []byte) {
	if st.status == Voted || len(st.shares) < n.hv {
		return nil, nil, nil
	}
	shares := make([]shamir.Share, 0, n.hv)
	for idx, v := range st.shares {
		shares = append(shares, shamir.Share{Index: idx, Value: v})
		if len(shares) == n.hv {
			break
		}
	}
	secret, err := shamir.Combine(shares, n.hv)
	if err != nil {
		return nil, nil, nil
	}
	receipt, err = shamir.ScalarToSecret(secret)
	if err != nil || len(receipt) != votecode.ReceiptSize {
		// Cannot happen when all shares carried valid EA signatures.
		n.metrics.BadShares.Add(1)
		return nil, nil, nil
	}
	st.status = Voted
	st.receipt = receipt
	notify = st.waiters
	st.waiters = nil
	return encVoted(serial, st.usedCode, receipt), notify, receipt
}

// BallotStatus reports a ballot's current state (tests and recovery).
func (n *Node) BallotStatus(serial uint64) (Status, []byte) {
	st := n.state(serial)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.status, st.usedCode
}

// CertAgreement checks the at-most-one-UCERT safety invariant across a set
// of nodes: any two that have bound a ballot in [1, numBallots] to a code
// agree on the code. Fault-injection harnesses probe this continuously
// while a fault schedule runs (DESIGN.md, "Scenarios, probes").
func CertAgreement(nodes []*Node, numBallots int) error {
	for b := 1; b <= numBallots; b++ {
		serial := uint64(b)
		var seen []byte
		for i, n := range nodes {
			_, code := n.BallotStatus(serial)
			if code == nil {
				continue
			}
			if seen == nil {
				seen = code
			} else if !bytes.Equal(seen, code) {
				return fmt.Errorf("vc: ballot %d: node %d certified a conflicting code", serial, i)
			}
		}
	}
	return nil
}
