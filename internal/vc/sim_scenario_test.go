package vc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/clock"
	"ddemos/internal/ea"
	"ddemos/internal/sim"
	"ddemos/internal/transport"
)

// The vc test cluster is a scenario fault surface, with in-place restart.
var (
	_ sim.Surface   = (*cluster)(nil)
	_ sim.Restarter = (*cluster)(nil)
)

// checkCertAgreement probes the at-most-one-UCERT invariant while a
// scenario runs (vc.CertAgreement over this cluster's nodes). The node
// slice is snapshotted under the lock: restarts swap incarnations
// mid-probe, and a stopped incarnation's frozen state is still a valid
// witness for agreement.
func (c *cluster) checkCertAgreement(numBallots int) error {
	c.mu.Lock()
	nodes := append([]*Node(nil), c.nodes...)
	c.mu.Unlock()
	return CertAgreement(nodes, numBallots)
}

// scenarioLink derives the sweep's link profile: lossy LAN by default, the
// paper's WAN when the scenario says so — drops and duplicates always on,
// since the invariants under test must survive them.
func scenarioLink(scen sim.Scenario) transport.LinkProfile {
	lp := transport.LANProfile
	lp.Jitter = time.Millisecond // wider than LAN default: real reordering
	if scen.WAN {
		lp = transport.WANProfile
	}
	lp.DropRate, lp.DupRate = 0.05, 0.10
	return lp
}

// sweepStats aggregates outcomes across the whole sweep so per-scenario
// starvation (legal) cannot mask a sweep-wide liveness collapse (a bug).
type sweepStats struct {
	mu        sync.Mutex
	scenarios int
	receipts  int
	starved   int
}

// equivocatorSeats maps a scenario's Byzantine seats to Equivocator — the
// exact attack UCERTs exist to defeat.
func equivocatorSeats(scen sim.Scenario) map[int]Byzantine {
	byz := make(map[int]Byzantine, len(scen.Byzantine))
	for _, b := range scen.Byzantine {
		byz[b] = Equivocator
	}
	return byz
}

// sweepStack picks the endpoint stack for a sweep seed: even seeds run the
// batched pipeline, odd seeds the raw one.
func sweepStack(seed uint64) func(int, *ea.ElectionData, transport.Endpoint, clock.Timers) transport.Endpoint {
	if seed%2 == 0 {
		return batchedStack(transport.BatcherOptions{Window: 500 * time.Microsecond, MaxMessages: 8})
	}
	return rawStack
}

// castOutcome is one conflicting-code submission and its result.
type castOutcome struct {
	serial  uint64
	part    ballot.PartID
	option  int
	at      int
	code    []byte
	receipt []byte
	err     error
}

// driveConflictingSubmissions races two conflicting vote codes for every
// ballot, submitted at rng-drawn nodes and virtual offsets spread across
// the fault-schedule window, and collects every outcome. salt decouples the
// submission schedule streams of independent sweeps on the same seed.
func driveConflictingSubmissions(t *testing.T, c *cluster, scen sim.Scenario, seed, salt uint64, numBallots, numVC int) []castOutcome {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, salt)) //nolint:gosec // test schedule only
	var subs []castOutcome
	for b := 0; b < numBallots; b++ {
		serial := uint64(b + 1)
		subs = append(subs,
			castOutcome{serial: serial, part: ballot.PartA, option: 0, at: rng.IntN(numVC)},
			castOutcome{serial: serial, part: ballot.PartB, option: 1, at: rng.IntN(numVC)})
	}
	results := make(chan castOutcome, len(subs))
	var wg sync.WaitGroup
	for _, sub := range subs {
		sub := sub
		offset := time.Duration(rng.Int64N(int64(scen.Duration)))
		code, err := c.data.Ballots[sub.serial-1].CodeFor(sub.part, sub.option)
		if err != nil {
			t.Fatal(err)
		}
		sub.code = code
		wg.Add(1)
		c.drv.AfterFunc(offset, func() {
			go func() {
				defer wg.Done()
				ctx, cancel := c.drv.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				sub.receipt, sub.err = c.node(sub.at).SubmitVote(ctx, sub.serial, sub.code)
				results <- sub
			}()
		})
	}
	wg.Wait()
	close(results)
	var out []castOutcome
	for o := range results {
		out = append(out, o)
	}
	return out
}

// tallyOutcomes asserts the sweep invariants — at most one receipt per
// ballot, every receipt the true line receipt for its code, certification
// agreement in the final state, no probe violations — updates the sweep
// stats, and returns each ballot's winning outcome.
func tallyOutcomes(t *testing.T, c *cluster, seed uint64, outcomes []castOutcome,
	violations *sim.Violations, stats *sweepStats, numBallots int) map[uint64]castOutcome {
	t.Helper()
	receipts := make(map[uint64]int)
	winners := make(map[uint64]castOutcome)
	for _, o := range outcomes {
		if o.err != nil {
			stats.mu.Lock()
			stats.starved++
			stats.mu.Unlock()
			continue
		}
		receipts[o.serial]++
		want := c.expectedReceipt(o.serial, o.part, o.option)
		if !bytes.Equal(o.receipt, want) {
			t.Errorf("seed %d: ballot %d: reconstructed receipt is corrupt", seed, o.serial)
		}
		winners[o.serial] = o
		stats.mu.Lock()
		stats.receipts++
		stats.mu.Unlock()
	}
	for serial, got := range receipts {
		if got > 1 {
			t.Errorf("seed %d: ballot %d issued %d receipts for conflicting codes", seed, serial, got)
		}
	}
	if err := c.checkCertAgreement(numBallots); err != nil {
		t.Errorf("seed %d: final state: %v", seed, err)
	}
	if !violations.Empty() {
		t.Errorf("seed %d: probe violations: %v", seed, violations.List())
	}
	stats.mu.Lock()
	stats.scenarios++
	stats.mu.Unlock()
	return winners
}

// runThresholdScenario runs one seeded fault schedule at the paper's
// thresholds: fv = ⌈Nv/3⌉−1 Equivocator nodes plus a crash/partition mix
// over the schedule window, while two conflicting vote codes race for every
// ballot. Safety must hold unconditionally; receipts may starve.
func runThresholdScenario(t *testing.T, seed uint64, stats *sweepStats) {
	const (
		numVC      = 4
		numBallots = 3
	)
	scen := sim.RandomScenario(seed, sim.ScenarioConfig{
		NumNodes:  numVC,
		Byzantine: 1, // fv = ⌈4/3⌉−1
		Duration:  10 * time.Millisecond,
	})
	c := newSimClusterStack(t, seed, equivocatorSeats(scen), numBallots, numVC, scenarioLink(scen), sweepStack(seed))
	scen.Install(c.drv, c)
	violations := scen.InstallProbes(c.drv, []sim.Probe{{
		Name:  "at-most-one-ucert",
		Every: 2 * time.Millisecond,
		Check: func() error { return c.checkCertAgreement(numBallots) },
	}})
	outcomes := driveConflictingSubmissions(t, c, scen, seed, 0x70FE, numBallots, numVC)
	tallyOutcomes(t, c, seed, outcomes, violations, stats, numBallots)
}

// TestScenarioSweepThresholdInvariants sweeps ≥100 seeded random fault
// schedules (crash windows, partitions, WAN profiles, drop/dup links, one
// Equivocator) in virtual time. Each seed is fully reproducible: rerun a
// failure with -run 'TestScenarioSweepThresholdInvariants/seed=N'. The CI
// scenario-matrix job adds one rotating seed via DDEMOS_SCENARIO_SEED.
func TestScenarioSweepThresholdInvariants(t *testing.T) {
	numSeeds := 100
	if testing.Short() {
		numSeeds = 20
	}
	seeds := make([]uint64, 0, numSeeds+1)
	for s := uint64(1); s <= uint64(numSeeds); s++ {
		seeds = append(seeds, s)
	}
	if v := os.Getenv("DDEMOS_SCENARIO_SEED"); v != "" {
		extra, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("DDEMOS_SCENARIO_SEED = %q: %v", v, err)
		}
		t.Logf("rotating scenario seed from environment: %d", extra)
		seeds = append(seeds, extra)
	}
	stats := &sweepStats{}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runThresholdScenario(t, seed, stats)
		})
	}
	t.Logf("sweep: %d scenarios, %d receipts issued, %d submissions starved",
		stats.scenarios, stats.receipts, stats.starved)
	// Starvation per scenario is legal (drops eat endorsements), but a
	// sweep where almost nothing completes means liveness collapsed.
	if stats.receipts < stats.scenarios/2 {
		t.Fatalf("only %d receipts across %d scenarios: liveness collapsed", stats.receipts, stats.scenarios)
	}
}

// sweepJournalOptions rotates the journal engine across sweep seeds: a
// third of the seeds run the single-WAL engine, the rest the pooled engine
// at 2 and 4 lanes — every restart sweep doubles as a backend-recovery
// sweep.
func sweepJournalOptions(seed uint64) JournalOptions {
	pools := []int{1, 2, 4}
	return JournalOptions{Pool: pools[seed%3]}
}

// journalDirs allocates per-node journal directories.
func journalDirs(t *testing.T, numVC int) []string {
	t.Helper()
	dirs := make([]string, numVC)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), fmt.Sprintf("vc-%d", i))
	}
	return dirs
}

// restartedNodes extracts the set of nodes a schedule restarts.
func restartedNodes(scen sim.Scenario) map[int]bool {
	restarted := map[int]bool{}
	for _, f := range scen.Faults {
		if f.Kind == sim.FaultRestart {
			restarted[f.A] = true
		}
	}
	return restarted
}

// driveRestartSweep is the shared body of the collection-phase restart
// sweeps: build a journaled cluster for the scenario, race conflicting
// submissions across the fault schedule with the at-most-one-UCERT probe
// running, tally the safety invariants, and replay every winning code at
// every restarted node — the answer must be byte-identical.
func driveRestartSweep(t *testing.T, seed, salt uint64, stats *sweepStats,
	scen sim.Scenario, flip map[int]Byzantine, numBallots, numVC int) {
	t.Helper()
	restarted := restartedNodes(scen)
	c := newSimClusterJ(t, seed, equivocatorSeats(scen), numBallots, numVC,
		scenarioLink(scen), sweepStack(seed), journalDirs(t, numVC), sweepJournalOptions(seed))
	c.flip = flip
	scen.Install(c.drv, c)
	violations := scen.InstallProbes(c.drv, []sim.Probe{{
		Name:  "at-most-one-ucert",
		Every: 2 * time.Millisecond,
		Check: func() error { return c.checkCertAgreement(numBallots) },
	}})
	outcomes := driveConflictingSubmissions(t, c, scen, seed, salt, numBallots, numVC)

	// A submission burst can resolve before the last scheduled fault fires:
	// wait (wall-clock poll, virtual progress) until the whole schedule has
	// executed, so the replay below provably targets *restarted* nodes.
	deadline := time.Now().Add(30 * time.Second)
	for len(c.drv.Trace()) < len(scen.Faults) {
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: fault schedule never completed", seed)
		}
		time.Sleep(time.Millisecond)
	}

	winners := tallyOutcomes(t, c, seed, outcomes, violations, stats, numBallots)

	// Receipt stability across restart: replay every winning code at a node
	// that was killed and recovered — the answer must be byte-identical.
	for serial, o := range winners {
		for at := range restarted {
			ctx, cancel := c.drv.WithTimeout(context.Background(), 10*time.Second)
			r, err := c.node(at).SubmitVote(ctx, serial, o.code)
			cancel()
			if err != nil {
				// A post-schedule resubmission can still starve only if the
				// Byzantine seat withholds; that is a liveness event, not a
				// safety violation.
				stats.mu.Lock()
				stats.starved++
				stats.mu.Unlock()
				continue
			}
			if !bytes.Equal(r, o.receipt) {
				t.Errorf("seed %d: ballot %d: restarted node %d returned a different receipt", seed, serial, at)
			}
		}
	}
}

// runRestartScenario runs one seeded crash-restart schedule over a
// journaled cluster: every node persists its runtime state, and the
// schedule hard-stops nodes (volatile state lost) and restarts them from
// WAL+snapshot mid-election, alongside partitions and an Equivocator seat.
// Safety (at most one UCERT, correct receipts) must hold across the
// restarts; after the schedule, every receipt issued must be reproducible
// at a node that lived through a restart.
func runRestartScenario(t *testing.T, seed uint64, stats *sweepStats) {
	const (
		numVC      = 4
		numBallots = 3
	)
	scen := sim.RandomScenario(seed, sim.ScenarioConfig{
		NumNodes:          numVC,
		Byzantine:         1,
		Duration:          10 * time.Millisecond,
		MaxCrashWindows:   -1, // restart windows take the crash lever's place
		MaxRestartWindows: 2,
	})
	// Every sweep seed must exercise recovery: if the draw produced no
	// restart window, add a deterministic one.
	if len(restartedNodes(scen)) == 0 {
		node := int(seed % numVC)
		scen.Faults = append(scen.Faults,
			sim.Fault{At: scen.Duration / 4, Kind: sim.FaultStop, A: node},
			sim.Fault{At: scen.Duration * 3 / 4, Kind: sim.FaultRestart, A: node})
	}
	driveRestartSweep(t, seed, 0x4E57, stats, scen, nil, numBallots, numVC)
}

// TestScenarioSweepRestartRecovery sweeps ≥100 seeded crash-restart
// schedules: journaled nodes are hard-stopped mid-election (volatile state
// gone) and relaunched from their WAL/snapshot, under partitions,
// drop/dup links, WAN profiles and one Equivocator. Safety must hold
// unconditionally and recovered nodes must reproduce issued receipts.
// Replay one seed with -run 'TestScenarioSweepRestartRecovery/seed=N'; CI
// adds a rotating seed via DDEMOS_RESTART_SEED.
func TestScenarioSweepRestartRecovery(t *testing.T) {
	numSeeds := 100
	if testing.Short() {
		numSeeds = 20
	}
	seeds := make([]uint64, 0, numSeeds+1)
	for s := uint64(1); s <= uint64(numSeeds); s++ {
		seeds = append(seeds, s)
	}
	if v := os.Getenv("DDEMOS_RESTART_SEED"); v != "" {
		extra, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("DDEMOS_RESTART_SEED = %q: %v", v, err)
		}
		t.Logf("rotating restart seed from environment: %d", extra)
		seeds = append(seeds, extra)
	}
	stats := &sweepStats{}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRestartScenario(t, seed, stats)
		})
	}
	t.Logf("restart sweep: %d scenarios, %d receipts issued, %d submissions starved",
		stats.scenarios, stats.receipts, stats.starved)
	if stats.receipts < stats.scenarios/2 {
		t.Fatalf("only %d receipts across %d scenarios: liveness collapsed", stats.receipts, stats.scenarios)
	}
}

// runMultiRestartScenario is one seed of the multi-node / Byzantine-flip
// restart sweep. Even seeds restart two distinct nodes in disjoint slots of
// one schedule window (at most one node ever down — within the fv bound)
// with an Equivocator seat running throughout; odd seeds run an all-honest
// cluster in which one node crashes honest and restarts as an Equivocator
// (the corruption-on-recovery fault). Both classes must keep the
// at-most-one-UCERT and receipt-validity probes green.
func runMultiRestartScenario(t *testing.T, seed uint64, stats *sweepStats) {
	const (
		numVC      = 4
		numBallots = 3
	)
	var scen sim.Scenario
	var flip map[int]Byzantine
	if seed%2 == 0 {
		scen = sim.RandomScenario(seed, sim.ScenarioConfig{
			NumNodes:           numVC,
			Byzantine:          1,
			Duration:           12 * time.Millisecond,
			MaxCrashWindows:    -1,
			MaxPartitions:      -1, // restarts are the fault under test
			SequentialRestarts: 2,
		})
		if len(restartedNodes(scen)) < 2 {
			t.Fatalf("seed %d: sequential-restart draw produced %d windows", seed, len(restartedNodes(scen)))
		}
	} else {
		scen = sim.RandomScenario(seed, sim.ScenarioConfig{
			NumNodes:        numVC,
			Duration:        10 * time.Millisecond,
			MaxCrashWindows: -1,
			MaxPartitions:   -1,
			ByzantineFlip:   true,
		})
		if len(scen.FlipByzantine) != 1 {
			t.Fatalf("seed %d: flip draw marked %d nodes", seed, len(scen.FlipByzantine))
		}
		flip = map[int]Byzantine{scen.FlipByzantine[0]: Equivocator}
	}
	driveRestartSweep(t, seed, 0xF11B, stats, scen, flip, numBallots, numVC)
}

// TestScenarioSweepMultiRestartByzFlip sweeps ≥100 seeds of the multi-node
// and Byzantine-flip restart classes (see runMultiRestartScenario). Replay
// one seed with -run 'TestScenarioSweepMultiRestartByzFlip/seed=N'; CI adds
// a rotating seed via DDEMOS_MULTIRESTART_SEED.
func TestScenarioSweepMultiRestartByzFlip(t *testing.T) {
	numSeeds := 100
	if testing.Short() {
		numSeeds = 20
	}
	seeds := make([]uint64, 0, numSeeds+1)
	for s := uint64(1); s <= uint64(numSeeds); s++ {
		seeds = append(seeds, s)
	}
	if v := os.Getenv("DDEMOS_MULTIRESTART_SEED"); v != "" {
		extra, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("DDEMOS_MULTIRESTART_SEED = %q: %v", v, err)
		}
		t.Logf("rotating multi-restart seed from environment: %d", extra)
		seeds = append(seeds, extra)
	}
	stats := &sweepStats{}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runMultiRestartScenario(t, seed, stats)
		})
	}
	t.Logf("multi-restart sweep: %d scenarios, %d receipts issued, %d submissions starved",
		stats.scenarios, stats.receipts, stats.starved)
	if stats.receipts < stats.scenarios/2 {
		t.Fatalf("only %d receipts across %d scenarios: liveness collapsed", stats.receipts, stats.scenarios)
	}
}

// certCodes snapshots a node's certified (serial → code) map.
func certCodes(n *Node) map[uint64]string {
	out := make(map[uint64]string)
	for _, e := range n.certifiedEntries() {
		out[e.Serial] = string(e.Code)
	}
	return out
}

// runConsensusRestartScenario hard-stops one node *during vote-set
// consensus* and recovers it mid-protocol. The collection phase completes
// cleanly first (consensus assumes reliable channels, so the link drops
// nothing; the restart itself is the fault), then all nodes run consensus
// while a seed-drawn schedule kills and revives the target. The consensus
// engine rotates with the seed (sweepEngine), so half the schedules kill a
// node mid-RBC/ABA and recovery must work identically: peers complete on
// n−f quorums without the dead node, and the restarted node converges via
// the engine-agnostic ANNOUNCE/VSC-FINAL path. Asserts: the recovered node
// re-announces exactly its journaled certified set (ANNOUNCE replay from
// recovered certs), every node — the recovered one included — returns a
// byte-identical vote set, and recovery stays idempotent after the result
// landed.
func runConsensusRestartScenario(t *testing.T, seed uint64, stats *sweepStats) {
	const (
		numVC      = 4
		numBallots = 3
	)
	rng := rand.New(rand.NewPCG(seed, 0xC025)) //nolint:gosec // test schedule only
	lp := transport.LinkProfile{Latency: 200 * time.Microsecond, Jitter: time.Millisecond, DupRate: 0.10}
	_, engine := sweepEngine(seed)
	c := newSimClusterJE(t, seed, nil, numBallots, numVC, lp, sweepStack(seed),
		journalDirs(t, numVC), sweepJournalOptions(seed), engine)

	// Collection: every ballot voted, no faults active. A submission can
	// still time out virtually when a loaded -race runner starves the
	// goroutines behind the virtual clock's quiescence heuristic; retries
	// are idempotent (same code re-multicasts ENDORSE, a formed receipt is
	// re-served), so starvation here is transient, not a protocol event.
	for b := 0; b < numBallots; b++ {
		serial := uint64(b + 1)
		at := rng.IntN(numVC)
		var err error
		for attempt := 0; attempt < 5; attempt++ {
			if _, err = c.simVote(serial, ballot.PartA, b%2, at); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("seed %d: collection vote %d: %v", seed, serial, err)
		}
	}

	// The consensus-phase fault schedule: stop node r early in the
	// consensus window, restart it before the window ends.
	r := rng.IntN(numVC)
	stopAt := 200*time.Microsecond + time.Duration(rng.Int64N(int64(3*time.Millisecond)))
	restartAt := stopAt + 500*time.Microsecond + time.Duration(rng.Int64N(int64(4*time.Millisecond)))
	var certMu sync.Mutex
	var preCerts, postCerts map[uint64]string
	c.drv.AfterFunc(stopAt, func() {
		old := c.node(r)
		c.StopNode(r)
		certMu.Lock()
		preCerts = certCodes(old)
		certMu.Unlock()
	})
	c.drv.AfterFunc(restartAt, func() {
		c.RestartNode(r)
		certMu.Lock()
		postCerts = certCodes(c.node(r))
		certMu.Unlock()
	})

	results := make([][]VotedBallot, numVC)
	errs := make([]error, numVC)
	var wg sync.WaitGroup
	for i := 0; i < numVC; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Virtual deadline: generous headroom is free in wall time and
			// keeps a heavily loaded -race runner from starving a peer.
			ctx, cancel := c.drv.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			results[i], errs[i] = c.node(i).VoteSetConsensus(ctx)
		}(i)
	}
	wg.Wait()

	// Any node whose run was interrupted retries until it returns: the
	// restarted node's attempt dies with the stop (or starves while peers
	// are mid-protocol), and a peer can starve virtually on a heavily
	// loaded runner. Every retry re-announces — for the recovered node,
	// from journaled certs — and peers answer with announce echoes and
	// VSC-FINAL, so retries always converge once a quorum finished.
	for i := 0; i < numVC; i++ {
		if errs[i] == nil {
			continue
		}
		deadline := time.Now().Add(120 * time.Second)
		for {
			ctx, cancel := c.drv.WithTimeout(context.Background(), 5*time.Second)
			set, err := c.node(i).VoteSetConsensus(ctx)
			cancel()
			if err == nil {
				results[i] = set
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d: node %d never completed consensus (restart target %d): %v", seed, i, r, err)
			}
			if errors.Is(err, ErrStopped) {
				time.Sleep(2 * time.Millisecond) // restart not yet fired
			}
		}
	}

	// Byte-identical results across every node, the recovered one included.
	want := CanonicalVoteSetHash(c.data.Manifest.ElectionID, results[0])
	for i := 1; i < numVC; i++ {
		if CanonicalVoteSetHash(c.data.Manifest.ElectionID, results[i]) != want {
			t.Fatalf("seed %d: node %d returned a different vote set than node 0", seed, i)
		}
	}
	if len(results[r]) != numBallots {
		t.Errorf("seed %d: agreed set has %d ballots, want %d", seed, len(results[r]), numBallots)
	}

	// ANNOUNCE replay from recovered certs: everything the dead incarnation
	// had certified must come back from the journal, same codes.
	certMu.Lock()
	pre, post := preCerts, postCerts
	certMu.Unlock()
	if len(pre) == 0 {
		t.Errorf("seed %d: stopped node had no certified ballots after clean collection", seed)
	}
	for serial, code := range pre {
		if post[serial] != code {
			t.Errorf("seed %d: recovered node lost or changed cert for ballot %d", seed, serial)
		}
	}

	// Recovery idempotence with the journaled result: a second stop/restart
	// cycle reproduces the state hash and the consensus answer without any
	// network round.
	pre2 := c.node(r).StateHash()
	c.StopNode(r)
	c.RestartNode(r)
	if got := c.node(r).StateHash(); got != pre2 {
		t.Errorf("seed %d: post-consensus recovery is not idempotent", seed)
	}
	ctx, cancel := c.drv.WithTimeout(context.Background(), time.Second)
	again, err := c.node(r).VoteSetConsensus(ctx)
	cancel()
	if err != nil {
		t.Fatalf("seed %d: recovered consensus rerun: %v", seed, err)
	}
	if CanonicalVoteSetHash(c.data.Manifest.ElectionID, again) != want {
		t.Errorf("seed %d: journaled consensus result changed across recovery", seed)
	}

	stats.mu.Lock()
	stats.scenarios++
	stats.receipts += numBallots
	stats.mu.Unlock()
}

// TestScenarioSweepConsensusRestartRecovery sweeps ≥100 seeded
// consensus-phase restart schedules (see runConsensusRestartScenario).
// Replay one seed with -run
// 'TestScenarioSweepConsensusRestartRecovery/seed=N'; CI adds a rotating
// seed via DDEMOS_CONSENSUS_SEED.
func TestScenarioSweepConsensusRestartRecovery(t *testing.T) {
	numSeeds := 100
	if testing.Short() {
		numSeeds = 20
	}
	seeds := make([]uint64, 0, numSeeds+1)
	for s := uint64(1); s <= uint64(numSeeds); s++ {
		seeds = append(seeds, s)
	}
	if v := os.Getenv("DDEMOS_CONSENSUS_SEED"); v != "" {
		extra, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("DDEMOS_CONSENSUS_SEED = %q: %v", v, err)
		}
		t.Logf("rotating consensus-restart seed from environment: %d", extra)
		seeds = append(seeds, extra)
	}
	stats := &sweepStats{}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runConsensusRestartScenario(t, seed, stats)
		})
	}
	t.Logf("consensus-restart sweep: %d scenarios completed", stats.scenarios)
}

// TestScenarioTraceHashReproducible is the acceptance bar for determinism:
// the same seed, run twice against fully independent clusters, executes the
// identical fault schedule — verified by the trace hash — and generation
// itself is a pure function of the seed.
func TestScenarioTraceHashReproducible(t *testing.T) {
	cfg := sim.ScenarioConfig{NumNodes: 4, Byzantine: 1, Duration: 10 * time.Millisecond}
	// Pick the first seed whose schedule is non-trivial (generation is a
	// pure function of the seed, so this choice is itself deterministic).
	seed := uint64(1)
	for ; len(sim.RandomScenario(seed, cfg).Faults) < 4; seed++ {
	}
	a, b := sim.RandomScenario(seed, cfg), sim.RandomScenario(seed, cfg)
	if len(a.Faults) != len(b.Faults) {
		t.Fatal("scenario generation is not deterministic")
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs across generations", i)
		}
	}
	run := func(name string) [32]byte {
		var h [32]byte
		t.Run(name, func(t *testing.T) {
			scen := sim.RandomScenario(seed, cfg)
			c := newSimClusterStack(t, seed, nil, 2, 4, scenarioLink(scen), rawStack)
			scen.Install(c.drv, c)
			// Real protocol traffic interleaves with the fault schedule.
			ctx, cancel := c.drv.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, _ = c.nodes[0].SubmitVote(ctx, 1, mustCode(t, c, 1, ballot.PartA, 0))
			// Wait (wall-clock poll, virtual progress) until the whole fault
			// schedule has executed.
			deadline := time.Now().Add(30 * time.Second)
			for len(c.drv.Trace()) < len(scen.Faults) {
				if time.Now().After(deadline) {
					t.Fatal("driver never reached the end of the schedule")
				}
				time.Sleep(time.Millisecond)
			}
			h = c.drv.TraceHash()
		})
		return h
	}
	h1 := run("first")
	h2 := run("second")
	if h1 != h2 {
		t.Fatal("same seed produced different event traces")
	}
}

func mustCode(t *testing.T, c *cluster, serial uint64, part ballot.PartID, option int) []byte {
	t.Helper()
	code, err := c.data.Ballots[serial-1].CodeFor(part, option)
	if err != nil {
		t.Fatal(err)
	}
	return code
}
