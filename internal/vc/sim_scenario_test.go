package vc

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/sim"
	"ddemos/internal/transport"
)

// The vc test cluster is a scenario fault surface.
var _ sim.Surface = (*cluster)(nil)

// checkCertAgreement probes the at-most-one-UCERT invariant while a
// scenario runs (vc.CertAgreement over this cluster's nodes).
func (c *cluster) checkCertAgreement(numBallots int) error {
	return CertAgreement(c.nodes, numBallots)
}

// scenarioLink derives the sweep's link profile: lossy LAN by default, the
// paper's WAN when the scenario says so — drops and duplicates always on,
// since the invariants under test must survive them.
func scenarioLink(scen sim.Scenario) transport.LinkProfile {
	lp := transport.LANProfile
	lp.Jitter = time.Millisecond // wider than LAN default: real reordering
	if scen.WAN {
		lp = transport.WANProfile
	}
	lp.DropRate, lp.DupRate = 0.05, 0.10
	return lp
}

// sweepStats aggregates outcomes across the whole sweep so per-scenario
// starvation (legal) cannot mask a sweep-wide liveness collapse (a bug).
type sweepStats struct {
	mu        sync.Mutex
	scenarios int
	receipts  int
	starved   int
}

// runThresholdScenario runs one seeded fault schedule at the paper's
// thresholds: fv = ⌈Nv/3⌉−1 Equivocator nodes plus a crash/partition mix
// over the schedule window, while two conflicting vote codes race for every
// ballot. Safety must hold unconditionally; receipts may starve.
func runThresholdScenario(t *testing.T, seed uint64, stats *sweepStats) {
	const (
		numVC      = 4
		numBallots = 3
	)
	scen := sim.RandomScenario(seed, sim.ScenarioConfig{
		NumNodes:  numVC,
		Byzantine: 1, // fv = ⌈4/3⌉−1
		Duration:  10 * time.Millisecond,
	})
	byz := make(map[int]Byzantine, len(scen.Byzantine))
	for _, b := range scen.Byzantine {
		byz[b] = Equivocator // the exact attack UCERTs exist to defeat
	}
	// Even seeds run the batched pipeline, odd seeds the raw one.
	stack := rawStack
	if seed%2 == 0 {
		stack = batchedStack(transport.BatcherOptions{Window: 500 * time.Microsecond, MaxMessages: 8})
	}
	c := newSimClusterStack(t, seed, byz, numBallots, numVC, scenarioLink(scen), stack)
	scen.Install(c.drv, c)
	violations := scen.InstallProbes(c.drv, []sim.Probe{{
		Name:  "at-most-one-ucert",
		Every: 2 * time.Millisecond,
		Check: func() error { return c.checkCertAgreement(numBallots) },
	}})

	// Two conflicting codes per ballot, submitted at different nodes at
	// seeded virtual offsets spread across the fault schedule.
	rng := rand.New(rand.NewPCG(seed, 0x70FE)) //nolint:gosec // test schedule only
	type submission struct {
		serial uint64
		part   ballot.PartID
		option int
		at     int
	}
	var subs []submission
	for b := 0; b < numBallots; b++ {
		serial := uint64(b + 1)
		subs = append(subs,
			submission{serial, ballot.PartA, 0, rng.IntN(numVC)},
			submission{serial, ballot.PartB, 1, rng.IntN(numVC)})
	}
	type outcome struct {
		sub     submission
		receipt []byte
		err     error
	}
	results := make(chan outcome, len(subs))
	var wg sync.WaitGroup
	for _, sub := range subs {
		sub := sub
		offset := time.Duration(rng.Int64N(int64(scen.Duration)))
		code, err := c.data.Ballots[sub.serial-1].CodeFor(sub.part, sub.option)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		c.drv.AfterFunc(offset, func() {
			go func() {
				defer wg.Done()
				ctx, cancel := c.drv.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				r, err := c.nodes[sub.at].SubmitVote(ctx, sub.serial, code)
				results <- outcome{sub, r, err}
			}()
		})
	}
	wg.Wait()
	close(results)

	// Invariants: at most one receipt per ballot, and every receipt is the
	// true receipt line for its code (reconstruction never corrupts).
	receipts := make(map[uint64]int)
	for o := range results {
		if o.err != nil {
			stats.mu.Lock()
			stats.starved++
			stats.mu.Unlock()
			continue
		}
		receipts[o.sub.serial]++
		want := c.expectedReceipt(o.sub.serial, o.sub.part, o.sub.option)
		if !bytes.Equal(o.receipt, want) {
			t.Errorf("seed %d: ballot %d: reconstructed receipt is corrupt", seed, o.sub.serial)
		}
		stats.mu.Lock()
		stats.receipts++
		stats.mu.Unlock()
	}
	for serial, got := range receipts {
		if got > 1 {
			t.Errorf("seed %d: ballot %d issued %d receipts for conflicting codes", seed, serial, got)
		}
	}
	if err := c.checkCertAgreement(numBallots); err != nil {
		t.Errorf("seed %d: final state: %v", seed, err)
	}
	if !violations.Empty() {
		t.Errorf("seed %d: probe violations: %v", seed, violations.List())
	}
	stats.mu.Lock()
	stats.scenarios++
	stats.mu.Unlock()
}

// TestScenarioSweepThresholdInvariants sweeps ≥100 seeded random fault
// schedules (crash windows, partitions, WAN profiles, drop/dup links, one
// Equivocator) in virtual time. Each seed is fully reproducible: rerun a
// failure with -run 'TestScenarioSweepThresholdInvariants/seed=N'. The CI
// scenario-matrix job adds one rotating seed via DDEMOS_SCENARIO_SEED.
func TestScenarioSweepThresholdInvariants(t *testing.T) {
	numSeeds := 100
	if testing.Short() {
		numSeeds = 20
	}
	seeds := make([]uint64, 0, numSeeds+1)
	for s := uint64(1); s <= uint64(numSeeds); s++ {
		seeds = append(seeds, s)
	}
	if v := os.Getenv("DDEMOS_SCENARIO_SEED"); v != "" {
		extra, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("DDEMOS_SCENARIO_SEED = %q: %v", v, err)
		}
		t.Logf("rotating scenario seed from environment: %d", extra)
		seeds = append(seeds, extra)
	}
	stats := &sweepStats{}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runThresholdScenario(t, seed, stats)
		})
	}
	t.Logf("sweep: %d scenarios, %d receipts issued, %d submissions starved",
		stats.scenarios, stats.receipts, stats.starved)
	// Starvation per scenario is legal (drops eat endorsements), but a
	// sweep where almost nothing completes means liveness collapsed.
	if stats.receipts < stats.scenarios/2 {
		t.Fatalf("only %d receipts across %d scenarios: liveness collapsed", stats.receipts, stats.scenarios)
	}
}

// TestScenarioTraceHashReproducible is the acceptance bar for determinism:
// the same seed, run twice against fully independent clusters, executes the
// identical fault schedule — verified by the trace hash — and generation
// itself is a pure function of the seed.
func TestScenarioTraceHashReproducible(t *testing.T) {
	cfg := sim.ScenarioConfig{NumNodes: 4, Byzantine: 1, Duration: 10 * time.Millisecond}
	// Pick the first seed whose schedule is non-trivial (generation is a
	// pure function of the seed, so this choice is itself deterministic).
	seed := uint64(1)
	for ; len(sim.RandomScenario(seed, cfg).Faults) < 4; seed++ {
	}
	a, b := sim.RandomScenario(seed, cfg), sim.RandomScenario(seed, cfg)
	if len(a.Faults) != len(b.Faults) {
		t.Fatal("scenario generation is not deterministic")
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs across generations", i)
		}
	}
	run := func(name string) [32]byte {
		var h [32]byte
		t.Run(name, func(t *testing.T) {
			scen := sim.RandomScenario(seed, cfg)
			c := newSimClusterStack(t, seed, nil, 2, 4, scenarioLink(scen), rawStack)
			scen.Install(c.drv, c)
			// Real protocol traffic interleaves with the fault schedule.
			ctx, cancel := c.drv.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, _ = c.nodes[0].SubmitVote(ctx, 1, mustCode(t, c, 1, ballot.PartA, 0))
			// Wait (wall-clock poll, virtual progress) until the whole fault
			// schedule has executed.
			deadline := time.Now().Add(30 * time.Second)
			for len(c.drv.Trace()) < len(scen.Faults) {
				if time.Now().After(deadline) {
					t.Fatal("driver never reached the end of the schedule")
				}
				time.Sleep(time.Millisecond)
			}
			h = c.drv.TraceHash()
		})
		return h
	}
	h1 := run("first")
	h2 := run("second")
	if h1 != h2 {
		t.Fatal("same seed produced different event traces")
	}
}

func mustCode(t *testing.T, c *cluster, serial uint64, part ballot.PartID, option int) []byte {
	t.Helper()
	code, err := c.data.Ballots[serial-1].CodeFor(part, option)
	if err != nil {
		t.Fatal(err)
	}
	return code
}
