package vc

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/clock"
	"ddemos/internal/ea"
	"ddemos/internal/sim"
	"ddemos/internal/transport"
)

// The vc test cluster is a scenario fault surface, with in-place restart.
var (
	_ sim.Surface   = (*cluster)(nil)
	_ sim.Restarter = (*cluster)(nil)
)

// checkCertAgreement probes the at-most-one-UCERT invariant while a
// scenario runs (vc.CertAgreement over this cluster's nodes). The node
// slice is snapshotted under the lock: restarts swap incarnations
// mid-probe, and a stopped incarnation's frozen state is still a valid
// witness for agreement.
func (c *cluster) checkCertAgreement(numBallots int) error {
	c.mu.Lock()
	nodes := append([]*Node(nil), c.nodes...)
	c.mu.Unlock()
	return CertAgreement(nodes, numBallots)
}

// scenarioLink derives the sweep's link profile: lossy LAN by default, the
// paper's WAN when the scenario says so — drops and duplicates always on,
// since the invariants under test must survive them.
func scenarioLink(scen sim.Scenario) transport.LinkProfile {
	lp := transport.LANProfile
	lp.Jitter = time.Millisecond // wider than LAN default: real reordering
	if scen.WAN {
		lp = transport.WANProfile
	}
	lp.DropRate, lp.DupRate = 0.05, 0.10
	return lp
}

// sweepStats aggregates outcomes across the whole sweep so per-scenario
// starvation (legal) cannot mask a sweep-wide liveness collapse (a bug).
type sweepStats struct {
	mu        sync.Mutex
	scenarios int
	receipts  int
	starved   int
}

// equivocatorSeats maps a scenario's Byzantine seats to Equivocator — the
// exact attack UCERTs exist to defeat.
func equivocatorSeats(scen sim.Scenario) map[int]Byzantine {
	byz := make(map[int]Byzantine, len(scen.Byzantine))
	for _, b := range scen.Byzantine {
		byz[b] = Equivocator
	}
	return byz
}

// sweepStack picks the endpoint stack for a sweep seed: even seeds run the
// batched pipeline, odd seeds the raw one.
func sweepStack(seed uint64) func(int, *ea.ElectionData, transport.Endpoint, clock.Timers) transport.Endpoint {
	if seed%2 == 0 {
		return batchedStack(transport.BatcherOptions{Window: 500 * time.Microsecond, MaxMessages: 8})
	}
	return rawStack
}

// castOutcome is one conflicting-code submission and its result.
type castOutcome struct {
	serial  uint64
	part    ballot.PartID
	option  int
	at      int
	code    []byte
	receipt []byte
	err     error
}

// driveConflictingSubmissions races two conflicting vote codes for every
// ballot, submitted at rng-drawn nodes and virtual offsets spread across
// the fault-schedule window, and collects every outcome. salt decouples the
// submission schedule streams of independent sweeps on the same seed.
func driveConflictingSubmissions(t *testing.T, c *cluster, scen sim.Scenario, seed, salt uint64, numBallots, numVC int) []castOutcome {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, salt)) //nolint:gosec // test schedule only
	var subs []castOutcome
	for b := 0; b < numBallots; b++ {
		serial := uint64(b + 1)
		subs = append(subs,
			castOutcome{serial: serial, part: ballot.PartA, option: 0, at: rng.IntN(numVC)},
			castOutcome{serial: serial, part: ballot.PartB, option: 1, at: rng.IntN(numVC)})
	}
	results := make(chan castOutcome, len(subs))
	var wg sync.WaitGroup
	for _, sub := range subs {
		sub := sub
		offset := time.Duration(rng.Int64N(int64(scen.Duration)))
		code, err := c.data.Ballots[sub.serial-1].CodeFor(sub.part, sub.option)
		if err != nil {
			t.Fatal(err)
		}
		sub.code = code
		wg.Add(1)
		c.drv.AfterFunc(offset, func() {
			go func() {
				defer wg.Done()
				ctx, cancel := c.drv.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				sub.receipt, sub.err = c.node(sub.at).SubmitVote(ctx, sub.serial, sub.code)
				results <- sub
			}()
		})
	}
	wg.Wait()
	close(results)
	var out []castOutcome
	for o := range results {
		out = append(out, o)
	}
	return out
}

// tallyOutcomes asserts the sweep invariants — at most one receipt per
// ballot, every receipt the true line receipt for its code, certification
// agreement in the final state, no probe violations — updates the sweep
// stats, and returns each ballot's winning outcome.
func tallyOutcomes(t *testing.T, c *cluster, seed uint64, outcomes []castOutcome,
	violations *sim.Violations, stats *sweepStats, numBallots int) map[uint64]castOutcome {
	t.Helper()
	receipts := make(map[uint64]int)
	winners := make(map[uint64]castOutcome)
	for _, o := range outcomes {
		if o.err != nil {
			stats.mu.Lock()
			stats.starved++
			stats.mu.Unlock()
			continue
		}
		receipts[o.serial]++
		want := c.expectedReceipt(o.serial, o.part, o.option)
		if !bytes.Equal(o.receipt, want) {
			t.Errorf("seed %d: ballot %d: reconstructed receipt is corrupt", seed, o.serial)
		}
		winners[o.serial] = o
		stats.mu.Lock()
		stats.receipts++
		stats.mu.Unlock()
	}
	for serial, got := range receipts {
		if got > 1 {
			t.Errorf("seed %d: ballot %d issued %d receipts for conflicting codes", seed, serial, got)
		}
	}
	if err := c.checkCertAgreement(numBallots); err != nil {
		t.Errorf("seed %d: final state: %v", seed, err)
	}
	if !violations.Empty() {
		t.Errorf("seed %d: probe violations: %v", seed, violations.List())
	}
	stats.mu.Lock()
	stats.scenarios++
	stats.mu.Unlock()
	return winners
}

// runThresholdScenario runs one seeded fault schedule at the paper's
// thresholds: fv = ⌈Nv/3⌉−1 Equivocator nodes plus a crash/partition mix
// over the schedule window, while two conflicting vote codes race for every
// ballot. Safety must hold unconditionally; receipts may starve.
func runThresholdScenario(t *testing.T, seed uint64, stats *sweepStats) {
	const (
		numVC      = 4
		numBallots = 3
	)
	scen := sim.RandomScenario(seed, sim.ScenarioConfig{
		NumNodes:  numVC,
		Byzantine: 1, // fv = ⌈4/3⌉−1
		Duration:  10 * time.Millisecond,
	})
	c := newSimClusterStack(t, seed, equivocatorSeats(scen), numBallots, numVC, scenarioLink(scen), sweepStack(seed))
	scen.Install(c.drv, c)
	violations := scen.InstallProbes(c.drv, []sim.Probe{{
		Name:  "at-most-one-ucert",
		Every: 2 * time.Millisecond,
		Check: func() error { return c.checkCertAgreement(numBallots) },
	}})
	outcomes := driveConflictingSubmissions(t, c, scen, seed, 0x70FE, numBallots, numVC)
	tallyOutcomes(t, c, seed, outcomes, violations, stats, numBallots)
}

// TestScenarioSweepThresholdInvariants sweeps ≥100 seeded random fault
// schedules (crash windows, partitions, WAN profiles, drop/dup links, one
// Equivocator) in virtual time. Each seed is fully reproducible: rerun a
// failure with -run 'TestScenarioSweepThresholdInvariants/seed=N'. The CI
// scenario-matrix job adds one rotating seed via DDEMOS_SCENARIO_SEED.
func TestScenarioSweepThresholdInvariants(t *testing.T) {
	numSeeds := 100
	if testing.Short() {
		numSeeds = 20
	}
	seeds := make([]uint64, 0, numSeeds+1)
	for s := uint64(1); s <= uint64(numSeeds); s++ {
		seeds = append(seeds, s)
	}
	if v := os.Getenv("DDEMOS_SCENARIO_SEED"); v != "" {
		extra, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("DDEMOS_SCENARIO_SEED = %q: %v", v, err)
		}
		t.Logf("rotating scenario seed from environment: %d", extra)
		seeds = append(seeds, extra)
	}
	stats := &sweepStats{}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runThresholdScenario(t, seed, stats)
		})
	}
	t.Logf("sweep: %d scenarios, %d receipts issued, %d submissions starved",
		stats.scenarios, stats.receipts, stats.starved)
	// Starvation per scenario is legal (drops eat endorsements), but a
	// sweep where almost nothing completes means liveness collapsed.
	if stats.receipts < stats.scenarios/2 {
		t.Fatalf("only %d receipts across %d scenarios: liveness collapsed", stats.receipts, stats.scenarios)
	}
}

// runRestartScenario runs one seeded crash-restart schedule over a
// journaled cluster: every node persists its runtime state, and the
// schedule hard-stops nodes (volatile state lost) and restarts them from
// WAL+snapshot mid-election, alongside partitions and an Equivocator seat.
// Safety (at most one UCERT, correct receipts) must hold across the
// restarts; after the schedule, every receipt issued must be reproducible
// at a node that lived through a restart.
func runRestartScenario(t *testing.T, seed uint64, stats *sweepStats) {
	const (
		numVC      = 4
		numBallots = 3
	)
	scen := sim.RandomScenario(seed, sim.ScenarioConfig{
		NumNodes:          numVC,
		Byzantine:         1,
		Duration:          10 * time.Millisecond,
		MaxCrashWindows:   -1, // restart windows take the crash lever's place
		MaxRestartWindows: 2,
	})
	// Every sweep seed must exercise recovery: if the draw produced no
	// restart window, add a deterministic one.
	hasRestart := false
	for _, f := range scen.Faults {
		if f.Kind == sim.FaultStop {
			hasRestart = true
			break
		}
	}
	if !hasRestart {
		node := int(seed % numVC)
		scen.Faults = append(scen.Faults,
			sim.Fault{At: scen.Duration / 4, Kind: sim.FaultStop, A: node},
			sim.Fault{At: scen.Duration * 3 / 4, Kind: sim.FaultRestart, A: node})
	}
	restarted := map[int]bool{}
	for _, f := range scen.Faults {
		if f.Kind == sim.FaultRestart {
			restarted[f.A] = true
		}
	}
	c := newSimCluster(t, seed, equivocatorSeats(scen), numBallots, numVC, scenarioLink(scen), sweepStack(seed), true)
	scen.Install(c.drv, c)
	violations := scen.InstallProbes(c.drv, []sim.Probe{{
		Name:  "at-most-one-ucert",
		Every: 2 * time.Millisecond,
		Check: func() error { return c.checkCertAgreement(numBallots) },
	}})
	outcomes := driveConflictingSubmissions(t, c, scen, seed, 0x4E57, numBallots, numVC)

	// A submission burst can resolve before the last scheduled fault fires:
	// wait (wall-clock poll, virtual progress) until the whole schedule has
	// executed, so the replay below provably targets *restarted* nodes.
	deadline := time.Now().Add(30 * time.Second)
	for len(c.drv.Trace()) < len(scen.Faults) {
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: fault schedule never completed", seed)
		}
		time.Sleep(time.Millisecond)
	}

	winners := tallyOutcomes(t, c, seed, outcomes, violations, stats, numBallots)

	// Receipt stability across restart: replay every winning code at a node
	// that was killed and recovered — the answer must be byte-identical.
	for serial, o := range winners {
		for at := range restarted {
			ctx, cancel := c.drv.WithTimeout(context.Background(), 10*time.Second)
			r, err := c.node(at).SubmitVote(ctx, serial, o.code)
			cancel()
			if err != nil {
				// A post-schedule resubmission can still starve only if the
				// Byzantine seat withholds; that is a liveness event, not a
				// safety violation.
				stats.mu.Lock()
				stats.starved++
				stats.mu.Unlock()
				continue
			}
			if !bytes.Equal(r, o.receipt) {
				t.Errorf("seed %d: ballot %d: restarted node %d returned a different receipt", seed, serial, at)
			}
		}
	}
}

// TestScenarioSweepRestartRecovery sweeps ≥100 seeded crash-restart
// schedules: journaled nodes are hard-stopped mid-election (volatile state
// gone) and relaunched from their WAL/snapshot, under partitions,
// drop/dup links, WAN profiles and one Equivocator. Safety must hold
// unconditionally and recovered nodes must reproduce issued receipts.
// Replay one seed with -run 'TestScenarioSweepRestartRecovery/seed=N'; CI
// adds a rotating seed via DDEMOS_RESTART_SEED.
func TestScenarioSweepRestartRecovery(t *testing.T) {
	numSeeds := 100
	if testing.Short() {
		numSeeds = 20
	}
	seeds := make([]uint64, 0, numSeeds+1)
	for s := uint64(1); s <= uint64(numSeeds); s++ {
		seeds = append(seeds, s)
	}
	if v := os.Getenv("DDEMOS_RESTART_SEED"); v != "" {
		extra, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("DDEMOS_RESTART_SEED = %q: %v", v, err)
		}
		t.Logf("rotating restart seed from environment: %d", extra)
		seeds = append(seeds, extra)
	}
	stats := &sweepStats{}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRestartScenario(t, seed, stats)
		})
	}
	t.Logf("restart sweep: %d scenarios, %d receipts issued, %d submissions starved",
		stats.scenarios, stats.receipts, stats.starved)
	if stats.receipts < stats.scenarios/2 {
		t.Fatalf("only %d receipts across %d scenarios: liveness collapsed", stats.receipts, stats.scenarios)
	}
}

// TestScenarioTraceHashReproducible is the acceptance bar for determinism:
// the same seed, run twice against fully independent clusters, executes the
// identical fault schedule — verified by the trace hash — and generation
// itself is a pure function of the seed.
func TestScenarioTraceHashReproducible(t *testing.T) {
	cfg := sim.ScenarioConfig{NumNodes: 4, Byzantine: 1, Duration: 10 * time.Millisecond}
	// Pick the first seed whose schedule is non-trivial (generation is a
	// pure function of the seed, so this choice is itself deterministic).
	seed := uint64(1)
	for ; len(sim.RandomScenario(seed, cfg).Faults) < 4; seed++ {
	}
	a, b := sim.RandomScenario(seed, cfg), sim.RandomScenario(seed, cfg)
	if len(a.Faults) != len(b.Faults) {
		t.Fatal("scenario generation is not deterministic")
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs across generations", i)
		}
	}
	run := func(name string) [32]byte {
		var h [32]byte
		t.Run(name, func(t *testing.T) {
			scen := sim.RandomScenario(seed, cfg)
			c := newSimClusterStack(t, seed, nil, 2, 4, scenarioLink(scen), rawStack)
			scen.Install(c.drv, c)
			// Real protocol traffic interleaves with the fault schedule.
			ctx, cancel := c.drv.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, _ = c.nodes[0].SubmitVote(ctx, 1, mustCode(t, c, 1, ballot.PartA, 0))
			// Wait (wall-clock poll, virtual progress) until the whole fault
			// schedule has executed.
			deadline := time.Now().Add(30 * time.Second)
			for len(c.drv.Trace()) < len(scen.Faults) {
				if time.Now().After(deadline) {
					t.Fatal("driver never reached the end of the schedule")
				}
				time.Sleep(time.Millisecond)
			}
			h = c.drv.TraceHash()
		})
		return h
	}
	h1 := run("first")
	h2 := run("second")
	if h1 != h2 {
		t.Fatal("same seed produced different event traces")
	}
}

func mustCode(t *testing.T, c *cluster, serial uint64, part ballot.PartID, option int) []byte {
	t.Helper()
	code, err := c.data.Ballots[serial-1].CodeFor(part, option)
	if err != nil {
		t.Fatal(err)
	}
	return code
}
