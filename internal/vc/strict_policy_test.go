package vc

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/ea"
	"ddemos/internal/sim"
	"ddemos/internal/transport"
)

// errInjected is the journal fault injected by these tests.
var errInjected = errors.New("injected journal failure")

// failKindJournal wraps a backend and fails appends that contain a record
// of the targeted kind — the scalpel for failing exactly the voted-record
// append while the endorsement/share plumbing stays healthy.
type failKindJournal struct {
	*MemJournal
	kind    byte
	failing atomic.Bool
}

func (f *failKindJournal) Append(recs [][]byte) error {
	if f.failing.Load() {
		for _, r := range recs {
			if len(r) > 0 && r[0] == f.kind {
				return errInjected
			}
		}
	}
	return f.MemJournal.Append(recs)
}

// strictCluster builds a 4-node sim cluster whose nodes run on injectable
// MemJournal-backed journals under the given ack policy.
func strictCluster(t *testing.T, policy AckPolicy, wrap func(i int, m *MemJournal) JournalBackend) (*cluster, []*MemJournal) {
	t.Helper()
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "vc-strict-test",
		Options:     []string{"yes", "no"},
		NumBallots:  6,
		NumVC:       4,
		NumBB:       1,
		NumTrustees: 1,
		VotingStart: start,
		VotingEnd:   start.Add(2 * time.Hour),
		VCOnly:      true,
		Seed:        []byte("vc-strict-seed"),
	})
	if err != nil {
		t.Fatal(err)
	}
	drv := sim.New(sim.Config{Start: start.Add(time.Minute)})
	net := transport.NewMemnetWithTimers(transport.LinkProfile{Latency: 200 * time.Microsecond}, drv)
	c := &cluster{t: t, data: data, net: net, drv: drv, dirs: make([]string, 4),
		stack: rawStack}
	mems := make([]*MemJournal, 4)
	for i := 0; i < 4; i++ {
		node, err := New(Config{
			Init:     data.VC[i],
			Endpoint: net.Endpoint(transport.NodeID(i)), //nolint:gosec // small
			Clock:    drv,
		})
		if err != nil {
			t.Fatal(err)
		}
		mems[i] = NewMemJournal(JournalOptions{})
		var backend JournalBackend = mems[i]
		if wrap != nil {
			backend = wrap(i, mems[i])
		}
		if err := node.RecoverBackend(backend, policy); err != nil {
			t.Fatal(err)
		}
		node.Start()
		c.nodes = append(c.nodes, node)
	}
	t.Cleanup(c.stop)
	t.Cleanup(drv.Spin())
	return c, mems
}

// TestStrictRefusesEndorsementAndVoteOnJournalFailure: with every journal
// failing, a Strict responder refuses the submission outright, and Strict
// peers stay silent on ENDORSE — no endorsement signature leaves a node
// that could forget having issued it.
func TestStrictRefusesEndorsementAndVoteOnJournalFailure(t *testing.T) {
	c, mems := strictCluster(t, PolicyStrict, nil)

	// Baseline: Strict with a healthy journal behaves normally.
	r, err := c.simVote(1, ballot.PartA, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, c.expectedReceipt(1, ballot.PartA, 0)) {
		t.Fatal("wrong receipt under healthy strict journal")
	}

	// Break every journal: the responder must fail fast (its own endorse
	// append fails before anything is multicast).
	for _, m := range mems {
		m.SetAppendError(errInjected)
	}
	if _, err := c.simVote(2, ballot.PartA, 0, 0); err == nil {
		t.Fatal("strict node issued a receipt with a failing journal")
	}
	if got := c.node(0).Metrics().StrictRefusals; got == 0 {
		t.Fatal("no strict refusal recorded")
	}

	// Heal only the responder: peers now refuse to endorse, so the
	// collection starves — no peer signs what it cannot remember.
	mems[0].SetAppendError(nil)
	ctx, cancel := c.drv.WithTimeout(context.Background(), 2*time.Second)
	code := mustCode(t, c, 3, ballot.PartA, 1)
	_, err = c.node(0).SubmitVote(ctx, 3, code)
	cancel()
	if err == nil {
		t.Fatal("receipt formed although strict peers cannot journal endorsements")
	}
	refusals := int64(0)
	for i := 1; i < 4; i++ {
		refusals += c.node(i).Metrics().StrictRefusals
	}
	if refusals == 0 {
		t.Fatal("no peer recorded a strict endorsement refusal")
	}

	// Heal everything: the same ballots now complete, including the one
	// whose endorsement record was refused earlier (the durable-retry
	// path re-journals it).
	for _, m := range mems {
		m.SetAppendError(nil)
	}
	r2, err := c.simVote(2, ballot.PartA, 0, 0)
	if err != nil {
		t.Fatalf("healed journal did not recover liveness: %v", err)
	}
	if !bytes.Equal(r2, c.expectedReceipt(2, ballot.PartA, 0)) {
		t.Fatal("wrong receipt after heal")
	}
}

// TestStrictWithholdsReceiptUntilDurable: the voted record specifically
// fails on every node, so shares flow and the receipt reconstructs in
// memory — but no node may release it. After the journal heals, a
// resubmission re-journals and releases the identical receipt.
func TestStrictWithholdsReceiptUntilDurable(t *testing.T) {
	var fails []*failKindJournal
	c, _ := strictCluster(t, PolicyStrict, func(i int, m *MemJournal) JournalBackend {
		f := &failKindJournal{MemJournal: m, kind: recVoted}
		f.failing.Store(true)
		fails = append(fails, f)
		return f
	})
	if _, err := c.simVote(1, ballot.PartB, 1, 0); err == nil {
		t.Fatal("receipt released without a durable voted record")
	}
	// The memory state very likely holds the reconstructed receipt — the
	// point is that it was not released.
	for _, f := range fails {
		f.failing.Store(false)
	}
	r, err := c.simVote(1, ballot.PartB, 1, 0)
	if err != nil {
		t.Fatalf("healed journal did not release the receipt: %v", err)
	}
	if !bytes.Equal(r, c.expectedReceipt(1, ballot.PartB, 1)) {
		t.Fatal("released receipt is wrong")
	}
}

// TestStrictRebindsAfterBindingAppendFailure: the binding (pending) record
// specifically fails, so the responder refuses the submission after its
// state went Pending. A resubmission after the heal must not hang on the
// Pending wait arm — it re-drives the flow, re-journals the binding, and
// completes.
func TestStrictRebindsAfterBindingAppendFailure(t *testing.T) {
	var fails []*failKindJournal
	c, _ := strictCluster(t, PolicyStrict, func(i int, m *MemJournal) JournalBackend {
		f := &failKindJournal{MemJournal: m, kind: recPending}
		f.failing.Store(true)
		fails = append(fails, f)
		return f
	})
	if _, err := c.simVote(1, ballot.PartA, 0, 0); err == nil {
		t.Fatal("submission succeeded although the binding record could not land")
	}
	for _, f := range fails {
		f.failing.Store(false)
	}
	r, err := c.simVote(1, ballot.PartA, 0, 0)
	if err != nil {
		t.Fatalf("resubmission after heal did not recover: %v", err)
	}
	if !bytes.Equal(r, c.expectedReceipt(1, ballot.PartA, 0)) {
		t.Fatal("recovered receipt is wrong")
	}
	// The binding made it to the journal this time: the responder's log
	// holds a pending record a restart could replay.
	found := false
	if err := fails[0].Replay(func(p []byte) error {
		if len(p) > 0 && p[0] == recPending {
			found = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no pending record reached the journal after the heal")
	}
}

// TestAvailableCountsAndContinues: the same blanket journal failure under
// Policy: Available must not cost a single receipt — errors are counted,
// service continues from memory (the pre-policy behaviour).
func TestAvailableCountsAndContinues(t *testing.T) {
	c, mems := strictCluster(t, PolicyAvailable, nil)
	for _, m := range mems {
		m.SetAppendError(errInjected)
	}
	r, err := c.simVote(1, ballot.PartA, 0, 0)
	if err != nil {
		t.Fatalf("available node refused service on journal failure: %v", err)
	}
	if !bytes.Equal(r, c.expectedReceipt(1, ballot.PartA, 0)) {
		t.Fatal("wrong receipt")
	}
	s := c.node(0).Metrics()
	if s.JournalErrors == 0 {
		t.Fatal("journal errors were not counted")
	}
	if s.StrictRefusals != 0 {
		t.Fatal("available node recorded strict refusals")
	}
}
