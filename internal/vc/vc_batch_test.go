package vc

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"sync"
	"testing"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/clock"
	"ddemos/internal/ea"
	"ddemos/internal/sim"
	"ddemos/internal/transport"
)

// newClusterStack builds a VC cluster whose endpoints are wrapped by stack
// (per node index), over a Memnet in the sim driver's virtual time — the
// harness for the batched-pipeline and fault-injection tests. Every timer
// in the cluster (link latency and jitter, batch-flush windows, vote
// deadlines via cluster.drv.WithTimeout) lives on the driver's event queue,
// so fault schedules replay identically from the seed and nothing depends
// on wall-clock scheduling under load.
func newClusterStack(t *testing.T, numBallots, numVC int, lp transport.LinkProfile,
	stack func(i int, data *ea.ElectionData, ep transport.Endpoint, tm clock.Timers) transport.Endpoint) *cluster {
	return newSimClusterStack(t, 1, nil, numBallots, numVC, lp, stack)
}

// newSimClusterStack is newClusterStack with an explicit seed and Byzantine
// assignment (scenario sweeps build many of these).
func newSimClusterStack(t *testing.T, seed uint64, byz map[int]Byzantine, numBallots, numVC int,
	lp transport.LinkProfile,
	stack func(i int, data *ea.ElectionData, ep transport.Endpoint, tm clock.Timers) transport.Endpoint) *cluster {
	return newSimCluster(t, seed, byz, numBallots, numVC, lp, stack, false)
}

// newSimCluster additionally gives every node a journal directory when
// journaled is set, enabling in-place crash-restart (sim.Restarter).
func newSimCluster(t *testing.T, seed uint64, byz map[int]Byzantine, numBallots, numVC int,
	lp transport.LinkProfile,
	stack func(i int, data *ea.ElectionData, ep transport.Endpoint, tm clock.Timers) transport.Endpoint,
	journaled bool) *cluster {
	t.Helper()
	var jopts JournalOptions
	if !journaled {
		return newSimClusterJ(t, seed, byz, numBallots, numVC, lp, stack, nil, jopts)
	}
	return newSimClusterJ(t, seed, byz, numBallots, numVC, lp, stack, journalDirs(t, numVC), jopts)
}

// newSimClusterJ is the journal-explicit constructor: per-node journal
// directories (nil = memory-only cluster, "" = memory-only node) and the
// journal engine options every (re)start uses — the lever the backend
// sweeps and the pooled-engine scenarios turn.
func newSimClusterJ(t *testing.T, seed uint64, byz map[int]Byzantine, numBallots, numVC int,
	lp transport.LinkProfile,
	stack func(i int, data *ea.ElectionData, ep transport.Endpoint, tm clock.Timers) transport.Endpoint,
	dirs []string, jopts JournalOptions) *cluster {
	return newSimClusterJE(t, seed, byz, numBallots, numVC, lp, stack, dirs, jopts, nil)
}

// newSimClusterJE additionally selects the vote-set-consensus engine every
// node (and every restart incarnation) runs — nil means the paper's
// interlocked protocol. The engine-differential and engine-rotation sweeps
// are the callers that set it.
func newSimClusterJE(t *testing.T, seed uint64, byz map[int]Byzantine, numBallots, numVC int,
	lp transport.LinkProfile,
	stack func(i int, data *ea.ElectionData, ep transport.Endpoint, tm clock.Timers) transport.Endpoint,
	dirs []string, jopts JournalOptions, engine EngineFactory) *cluster {
	t.Helper()
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "vc-batch-test",
		Options:     []string{"yes", "no"},
		NumBallots:  numBallots,
		NumVC:       numVC,
		NumBB:       1,
		NumTrustees: 1,
		VotingStart: start,
		VotingEnd:   start.Add(2 * time.Hour),
		VCOnly:      true,
		Seed:        []byte("vc-batch-cluster-seed"),
	})
	if err != nil {
		t.Fatal(err)
	}
	drv := sim.New(sim.Config{Start: start.Add(time.Minute)})
	net := transport.NewMemnetWithTimers(lp, drv)
	net.Reseed(seed, 0xFA17)
	if dirs == nil {
		dirs = make([]string, numVC)
	}
	c := &cluster{
		t:      t,
		data:   data,
		net:    net,
		drv:    drv,
		byz:    byz,
		engine: engine,
		stack:  stack,
		dirs:   dirs,
		jopts:  jopts,
	}
	for i := 0; i < numVC; i++ {
		ep := stack(i, data, c.net.Endpoint(transport.NodeID(i)), drv)
		node, err := New(Config{
			Init:      data.VC[i],
			Endpoint:  ep,
			Clock:     drv,
			Byzantine: byz[i],
			Engine:    engine,
		})
		if err != nil {
			t.Fatal(err)
		}
		if c.dirs[i] != "" {
			if err := node.RecoverWithOptions(c.dirs[i], jopts); err != nil {
				t.Fatal(err)
			}
		}
		node.Start()
		c.nodes = append(c.nodes, node)
	}
	t.Cleanup(c.stop)
	t.Cleanup(drv.Spin())
	return c
}

// batchedStack is the production endpoint stack: network → Signed → Batcher.
func batchedStack(opts transport.BatcherOptions) func(int, *ea.ElectionData, transport.Endpoint, clock.Timers) transport.Endpoint {
	return func(i int, data *ea.ElectionData, ep transport.Endpoint, tm clock.Timers) transport.Endpoint {
		pubs := make(map[transport.NodeID]ed25519.PublicKey, data.Manifest.NumVC)
		for j, p := range data.Manifest.VCPublics {
			pubs[transport.NodeID(j)] = p //nolint:gosec // small
		}
		opts.Timers = tm
		return transport.NewBatcher(transport.NewSigned(ep, data.VC[i].Private, pubs), opts)
	}
}

// rawStack attaches nodes directly to the network.
func rawStack(i int, data *ea.ElectionData, ep transport.Endpoint, tm clock.Timers) transport.Endpoint {
	return ep
}

func TestVoteBatchedPipeline(t *testing.T) {
	c := newClusterStack(t, 8, 4,
		transport.LinkProfile{Latency: 200 * time.Microsecond},
		batchedStack(transport.BatcherOptions{Window: 500 * time.Microsecond}))
	for i := 0; i < 4; i++ {
		serial := uint64(i + 1)
		receipt, err := c.vote(serial, ballot.PartA, i%2, i)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if !bytes.Equal(receipt, c.expectedReceipt(serial, ballot.PartA, i%2)) {
			t.Fatalf("node %d: wrong receipt", i)
		}
	}
}

func TestVoteBatchedConcurrentVoters(t *testing.T) {
	const voters = 40
	c := newClusterStack(t, voters, 4,
		transport.LinkProfile{Latency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond},
		batchedStack(transport.BatcherOptions{Window: time.Millisecond}))
	errs := make(chan error, voters)
	for v := 0; v < voters; v++ {
		go func(v int) {
			serial := uint64(v + 1)
			part := ballot.PartID(v % 2) //nolint:gosec // 0 or 1
			receipt, err := c.vote(serial, part, v%2, v%4)
			if err == nil && !bytes.Equal(receipt, c.expectedReceipt(serial, part, v%2)) {
				err = ErrInvalidCode
			}
			errs <- err
		}(v)
	}
	for v := 0; v < voters; v++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestVoteBatchingSenderOnlyInterop(t *testing.T) {
	// Only node 0 batches; the other nodes run raw endpoints with no
	// unbatching wrapper, so their pumps must split wire.Batch envelopes
	// themselves (mixed deployments with inconsistent -batch-window flags).
	c := newClusterStack(t, 4, 4,
		transport.LinkProfile{Latency: 200 * time.Microsecond},
		func(i int, data *ea.ElectionData, ep transport.Endpoint, tm clock.Timers) transport.Endpoint {
			if i == 0 {
				return transport.NewBatcher(ep, transport.BatcherOptions{Window: time.Millisecond, Timers: tm})
			}
			return ep
		})
	receipt, err := c.vote(1, ballot.PartB, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(receipt, c.expectedReceipt(1, ballot.PartB, 1)) {
		t.Fatal("wrong receipt")
	}
}

func TestBatchedDuplicationIsIdempotent(t *testing.T) {
	// Whole-batch duplication re-delivers every message inside the batch;
	// duplicate ENDORSEMENTs and VOTE_Ps must not corrupt any receipt.
	const voters = 12
	c := newClusterStack(t, voters, 4,
		transport.LinkProfile{Latency: 200 * time.Microsecond, Jitter: 300 * time.Microsecond, DupRate: 0.4},
		batchedStack(transport.BatcherOptions{Window: time.Millisecond, MaxMessages: 8}))
	for v := 0; v < voters; v++ {
		serial := uint64(v + 1)
		receipt, err := c.vote(serial, ballot.PartA, v%2, v%4)
		if err != nil {
			t.Fatalf("ballot %d: %v", serial, err)
		}
		if !bytes.Equal(receipt, c.expectedReceipt(serial, ballot.PartA, v%2)) {
			t.Fatalf("ballot %d: wrong receipt", serial)
		}
	}
}

// TestBatchedFaultInjectionAtMostOneUCert drives the core safety invariant
// through the batched pipeline under Memnet fault injection: whole batches
// are dropped, duplicated and reordered while two different codes race for
// every ballot. No ballot may ever certify two codes — receipts may fail
// (drops without retransmission can starve the endorsement threshold), but
// any two nodes that certified a ballot must agree.
func TestBatchedFaultInjectionAtMostOneUCert(t *testing.T) {
	const ballots = 12
	c := newClusterStack(t, ballots, 4,
		transport.LinkProfile{
			Latency:  200 * time.Microsecond,
			Jitter:   2 * time.Millisecond, // reorders whole batches
			DropRate: 0.10,
			DupRate:  0.15,
		},
		batchedStack(transport.BatcherOptions{Window: time.Millisecond, MaxMessages: 6}))

	type res struct {
		serial  uint64
		receipt []byte
		err     error
	}
	results := make(chan res, 2*ballots)
	var wg sync.WaitGroup
	for b := 0; b < ballots; b++ {
		serial := uint64(b + 1)
		codeA, err := c.data.Ballots[b].CodeFor(ballot.PartA, 0)
		if err != nil {
			t.Fatal(err)
		}
		codeB, err := c.data.Ballots[b].CodeFor(ballot.PartB, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, code := range [][]byte{codeA, codeB} {
			wg.Add(1)
			go func(at int, code []byte) {
				defer wg.Done()
				// Virtual deadline: a starved vote ends when the simulation
				// reaches +5s, not after a wall-clock sleep.
				ctx, cancel := c.drv.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				r, err := c.nodes[at].SubmitVote(ctx, serial, code)
				results <- res{serial, r, err}
			}((b+i)%4, code)
		}
	}
	wg.Wait()
	close(results)

	receipts := make(map[uint64]int)
	for r := range results {
		if r.err == nil {
			receipts[r.serial]++
		}
	}
	for serial, got := range receipts {
		if got > 1 {
			t.Errorf("ballot %d: %d receipts issued for conflicting codes", serial, got)
		}
	}
	// Certification agreement: every node that bound a ballot to a code must
	// have bound it to the same code.
	for b := 0; b < ballots; b++ {
		serial := uint64(b + 1)
		var seen []byte
		for i, n := range c.nodes {
			_, code := n.BallotStatus(serial)
			if code == nil {
				continue
			}
			if seen == nil {
				seen = code
			} else if !bytes.Equal(seen, code) {
				t.Errorf("ballot %d: node %d certified a different code", serial, i)
			}
		}
	}
}
