package vc

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/clock"
	"ddemos/internal/ea"
	"ddemos/internal/sim"
	"ddemos/internal/transport"
	"ddemos/internal/wire"
)

// cluster is a test harness running Nv VC nodes over a simulated network.
// Either clk (manual fake clock, real Memnet timers) or drv (virtual time,
// sim-driven Memnet) is set, depending on the constructor. Sim-built
// clusters can stop and restart nodes in place (crash-recovery scenarios);
// dirs holds each node's journal directory ("" = memory-only node).
type cluster struct {
	t    *testing.T
	data *ea.ElectionData
	net  *transport.Memnet
	clk  *clock.Fake
	drv  *sim.Driver

	mu    sync.Mutex
	nodes []*Node

	dirs   []string
	jopts  JournalOptions    // journal engine config for journaled nodes
	flip   map[int]Byzantine // behaviour applied from the next restart on
	byz    map[int]Byzantine
	engine EngineFactory // vote-set-consensus engine (nil = interlocked)
	stack  func(i int, data *ea.ElectionData, ep transport.Endpoint, tm clock.Timers) transport.Endpoint
}

// Crash, Restore and Partition implement sim.Surface for scenario runs.
func (c *cluster) Crash(i int)   { c.net.Isolate(transport.NodeID(i), true) }  //nolint:gosec // small
func (c *cluster) Restore(i int) { c.net.Isolate(transport.NodeID(i), false) } //nolint:gosec // small
func (c *cluster) Partition(a, b int, on bool) {
	c.net.Partition(transport.NodeID(a), transport.NodeID(b), on) //nolint:gosec // small
}

// node returns the current incarnation of node i (restarts swap it).
func (c *cluster) node(i int) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[i]
}

// StopNode implements sim.Restarter: a hard stop — all volatile state of
// the incarnation is gone; only its journal (if any) survives.
func (c *cluster) StopNode(i int) {
	c.node(i).Stop()
}

// RestartNode implements sim.Restarter: relaunch node i from its journal
// under the same network identity. A node marked in c.flip comes back with
// the flipped Byzantine behaviour — it crashed honest and restarts
// corrupted (the corruption-on-recovery fault class).
func (c *cluster) RestartNode(i int) {
	c.node(i).Stop()                                                     // idempotent: a restart without a prior stop is legal
	ep := c.stack(i, c.data, c.net.Endpoint(transport.NodeID(i)), c.drv) //nolint:gosec // small
	mode := c.byz[i]
	if b, ok := c.flip[i]; ok {
		mode = b
	}
	node, err := New(Config{
		Init:      c.data.VC[i],
		Endpoint:  ep,
		Clock:     c.drv,
		Byzantine: mode,
		Engine:    c.engine,
	})
	if err != nil {
		c.t.Errorf("restart vc %d: %v", i, err)
		return
	}
	if c.dirs[i] != "" {
		if err := node.RecoverWithOptions(c.dirs[i], c.jopts); err != nil {
			c.t.Errorf("restart vc %d: recover: %v", i, err)
			return
		}
	}
	node.Start()
	c.mu.Lock()
	c.nodes[i] = node
	c.mu.Unlock()
}

func newCluster(t *testing.T, numBallots, numVC int, byz map[int]Byzantine) *cluster {
	t.Helper()
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "vc-test",
		Options:     []string{"yes", "no"},
		NumBallots:  numBallots,
		NumVC:       numVC,
		NumBB:       1,
		NumTrustees: 1,
		VotingStart: start,
		VotingEnd:   start.Add(2 * time.Hour),
		VCOnly:      true,
		Seed:        []byte("vc-cluster-seed"),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{
		t:    t,
		data: data,
		net:  transport.NewMemnet(transport.LinkProfile{Latency: 200 * time.Microsecond}),
		clk:  clock.NewFake(start.Add(time.Minute)),
	}
	for i := 0; i < numVC; i++ {
		mode := Honest
		if byz != nil {
			mode = byz[i]
		}
		node, err := New(Config{
			Init:      data.VC[i],
			Endpoint:  c.net.Endpoint(transport.NodeID(i)),
			Clock:     c.clk,
			Byzantine: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		node.Start()
		c.nodes = append(c.nodes, node)
	}
	t.Cleanup(c.stop)
	return c
}

func (c *cluster) stop() {
	c.mu.Lock()
	nodes := append([]*Node(nil), c.nodes...)
	c.mu.Unlock()
	for _, n := range nodes {
		n.Stop()
	}
	_ = c.net.Close()
}

// vote casts ballot `serial` with the code for (part, option) at node `at`.
func (c *cluster) vote(serial uint64, part ballot.PartID, option, at int) ([]byte, error) {
	code, err := c.data.Ballots[serial-1].CodeFor(part, option)
	if err != nil {
		c.t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return c.nodes[at].SubmitVote(ctx, serial, code)
}

func (c *cluster) expectedReceipt(serial uint64, part ballot.PartID, option int) []byte {
	return c.data.Ballots[serial-1].Parts[part].Lines[option].Receipt
}

func TestVoteIssuesCorrectReceipt(t *testing.T) {
	c := newCluster(t, 4, 4, nil)
	receipt, err := c.vote(1, ballot.PartA, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(receipt, c.expectedReceipt(1, ballot.PartA, 0)) {
		t.Fatalf("receipt %x does not match ballot %x", receipt, c.expectedReceipt(1, ballot.PartA, 0))
	}
}

func TestVoteEveryNodeCanRespond(t *testing.T) {
	c := newCluster(t, 8, 4, nil)
	for i := 0; i < 4; i++ {
		serial := uint64(i + 1)
		receipt, err := c.vote(serial, ballot.PartB, 1, i)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if !bytes.Equal(receipt, c.expectedReceipt(serial, ballot.PartB, 1)) {
			t.Fatalf("node %d: wrong receipt", i)
		}
	}
}

func TestResubmitSameCodeReturnsStoredReceipt(t *testing.T) {
	c := newCluster(t, 2, 4, nil)
	r1, err := c.vote(1, ballot.PartA, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.vote(1, ballot.PartA, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r2) {
		t.Fatal("resubmission returned a different receipt")
	}
	// Resubmission at a different node must also work once it holds the
	// voted state (it participated in VOTE_P).
	waitFor(t, func() bool {
		st, _ := c.nodes[2].BallotStatus(1)
		return st == Voted
	})
	r3, err := c.vote(1, ballot.PartA, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r3) {
		t.Fatal("other node returned different receipt")
	}
}

func TestDifferentCodeRejectedAfterVote(t *testing.T) {
	c := newCluster(t, 2, 4, nil)
	if _, err := c.vote(1, ballot.PartA, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.vote(1, ballot.PartA, 1, 0); err == nil {
		t.Fatal("second code on same ballot must be rejected")
	}
	if _, err := c.vote(1, ballot.PartB, 0, 0); err == nil {
		t.Fatal("code from other part must be rejected")
	}
}

func TestInvalidInputsRejected(t *testing.T) {
	c := newCluster(t, 2, 4, nil)
	ctx := context.Background()
	if _, err := c.nodes[0].SubmitVote(ctx, 999, []byte("nonsense-vote-code!!")); err == nil {
		t.Fatal("unknown serial must be rejected")
	}
	if _, err := c.nodes[0].SubmitVote(ctx, 1, []byte("nonsense-vote-code!!")); err == nil {
		t.Fatal("invalid code must be rejected")
	}
}

func TestOutsideElectionHours(t *testing.T) {
	c := newCluster(t, 2, 4, nil)
	c.clk.Set(c.data.Manifest.VotingEnd.Add(time.Minute))
	if _, err := c.vote(1, ballot.PartA, 0, 0); err == nil {
		t.Fatal("vote after end must be rejected")
	}
	c.clk.Set(c.data.Manifest.VotingStart.Add(-time.Minute))
	if _, err := c.vote(1, ballot.PartA, 0, 0); err == nil {
		t.Fatal("vote before start must be rejected")
	}
}

func TestVoteWithCrashedMinority(t *testing.T) {
	// fv = 1 for Nv = 4: one crashed node must not block receipts.
	c := newCluster(t, 4, 4, nil)
	c.net.Isolate(3, true)
	receipt, err := c.vote(1, ballot.PartA, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(receipt, c.expectedReceipt(1, ballot.PartA, 0)) {
		t.Fatal("wrong receipt")
	}
}

func TestVoteBlockedByCrashedMajority(t *testing.T) {
	// Two crashed nodes out of 4 exceed fv: no receipt can form.
	c := newCluster(t, 2, 4, nil)
	c.net.Isolate(2, true)
	c.net.Isolate(3, true)
	code, _ := c.data.Ballots[0].CodeFor(ballot.PartA, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := c.nodes[0].SubmitVote(ctx, 1, code); err == nil {
		t.Fatal("receipt must not form beyond the fault threshold")
	}
}

func TestVoteWithShareCorruptor(t *testing.T) {
	// A Byzantine node sending corrupt shares must not prevent receipt
	// generation (honest shares suffice) nor corrupt the receipt (EA
	// signatures filter bad shares).
	c := newCluster(t, 4, 4, map[int]Byzantine{3: ShareCorruptor})
	receipt, err := c.vote(1, ballot.PartB, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(receipt, c.expectedReceipt(1, ballot.PartB, 0)) {
		t.Fatal("corrupted shares produced wrong receipt")
	}
	waitFor(t, func() bool { return c.nodes[0].Metrics().BadShares > 0 })
}

func TestConcurrentVotersDistinctBallots(t *testing.T) {
	const voters = 40
	c := newCluster(t, voters, 4, nil)
	errs := make(chan error, voters)
	for v := 0; v < voters; v++ {
		go func(v int) {
			serial := uint64(v + 1)
			part := ballot.PartID(v % 2) //nolint:gosec // 0 or 1
			receipt, err := c.vote(serial, part, v%2, v%4)
			if err == nil && !bytes.Equal(receipt, c.expectedReceipt(serial, part, v%2)) {
				err = ErrInvalidCode
			}
			errs <- err
		}(v)
	}
	for v := 0; v < voters; v++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentSameBallotSameCode(t *testing.T) {
	// Multiple submissions of the same code (possibly at different nodes)
	// must all converge on the same receipt.
	c := newCluster(t, 1, 4, nil)
	const n = 4
	type res struct {
		receipt []byte
		err     error
	}
	results := make(chan res, n)
	for i := 0; i < n; i++ {
		go func(at int) {
			r, err := c.vote(1, ballot.PartA, 1, at)
			results <- res{r, err}
		}(i % 4)
	}
	var first []byte
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if first == nil {
			first = r.receipt
		} else if !bytes.Equal(first, r.receipt) {
			t.Fatal("inconsistent receipts for same code")
		}
	}
}

func TestUCertUniqueness(t *testing.T) {
	// Concurrent submissions of two DIFFERENT codes for one ballot: at most
	// one may obtain a receipt; the ballot must never be certified for both.
	c := newCluster(t, 1, 4, nil)
	codeA, _ := c.data.Ballots[0].CodeFor(ballot.PartA, 0)
	codeB, _ := c.data.Ballots[0].CodeFor(ballot.PartB, 1)
	type res struct {
		receipt []byte
		err     error
	}
	results := make(chan res, 2)
	submit := func(at int, code []byte) {
		ctx, cancel := context.WithTimeout(context.Background(), 700*time.Millisecond)
		defer cancel()
		r, err := c.nodes[at].SubmitVote(ctx, 1, code)
		results <- res{r, err}
	}
	go submit(0, codeA)
	go submit(1, codeB)
	got := 0
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err == nil {
			got++
		}
	}
	if got > 1 {
		t.Fatal("two different codes both produced receipts")
	}
	// All nodes that have a certified code must agree on which one.
	var seen []byte
	for i, n := range c.nodes {
		_, code := n.BallotStatus(1)
		if code == nil {
			continue
		}
		if seen == nil {
			seen = code
		} else if !bytes.Equal(seen, code) {
			t.Fatalf("node %d certified a different code", i)
		}
	}
}

func TestUCertVerification(t *testing.T) {
	c := newCluster(t, 2, 4, nil)
	if _, err := c.vote(1, ballot.PartA, 0, 0); err != nil {
		t.Fatal(err)
	}
	entries := c.nodes[0].certifiedEntries()
	if len(entries) != 1 {
		t.Fatalf("%d certified entries", len(entries))
	}
	cert := entries[0].Cert
	if !c.nodes[1].VerifyUCert(&cert) {
		t.Fatal("valid UCERT rejected")
	}
	// Tamper: change the code.
	bad := cert
	bad.Code = append([]byte(nil), cert.Code...)
	bad.Code[0] ^= 1
	if c.nodes[1].VerifyUCert(&bad) {
		t.Fatal("tampered UCERT accepted")
	}
	// Too few signatures.
	bad2 := cert
	bad2.Sigs = cert.Sigs[:1]
	if c.nodes[1].VerifyUCert(&bad2) {
		t.Fatal("UCERT with too few sigs accepted")
	}
	// Duplicate signer must not inflate the count.
	bad3 := cert
	bad3.Sigs = []wire.SigEntry{cert.Sigs[0], cert.Sigs[0], cert.Sigs[0]}
	if c.nodes[1].VerifyUCert(&bad3) {
		t.Fatal("UCERT with duplicated signer accepted")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
