package vc

import (
	"context"
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"

	"ddemos/internal/clock"
	"ddemos/internal/ea"
	"ddemos/internal/sig"
	"ddemos/internal/transport"
	"ddemos/internal/wire"
)

// VotedBallot is one ⟨serial-no, vote-code⟩ tuple of the agreed vote set.
type VotedBallot struct {
	Serial uint64
	Code   []byte
}

// maxVscBuffer bounds pre-start buffering of consensus traffic.
const maxVscBuffer = 1 << 16

// recoverRetryInterval paces RECOVER-REQUEST retransmissions.
const recoverRetryInterval = 250 * time.Millisecond

// VoteSetConsensus runs the §III-E election-end protocol: disperse certified
// vote codes (ANNOUNCE), run one binary consensus instance per ballot
// (batched), recover missing codes for ballots that decided "voted", and
// return the agreed vote set. All VC nodes return identical sets.
//
// k-out-of-m note (paper §VI future work): generalizing to k selections per
// ballot requires moving the instance space from one-per-ballot to
// one-per-(ballot, part, row) — instance = (serial-1)*2m + part*m + row —
// with input 1 iff that row's code is certified. Per-part endorsement
// stickiness already guarantees no two parts can both certify (the UCERT
// counting argument applies per part pair), so per-row decisions compose
// into consistent multi-code sets. The announce/recover layer then keys
// entries by (serial, code) — which wire.AnnounceEntry already supports.
func (n *Node) VoteSetConsensus(ctx context.Context) ([]VotedBallot, error) {
	// A recovered node that already completed consensus returns its
	// journaled set: the agreement is final, and a crash after the result
	// was acted on (signed, pushed to BB) must not re-derive it. A Strict
	// node whose record never landed re-attempts the append first — the
	// same fast-path duty the receipt paths carry.
	n.vscMu.Lock()
	if n.vscDone {
		set := append([]VotedBallot(nil), n.vscResult...)
		durable := n.vscDurable
		n.vscMu.Unlock()
		if n.strictJournal() && !durable {
			err := n.journalAppend(encVSC(set))
			if err == nil {
				err = n.journal.Sync()
			}
			if err != nil {
				n.metrics.StrictRefusals.Add(1)
				return nil, fmt.Errorf("vc: vote set not durable: %w", err)
			}
			n.vscMu.Lock()
			n.vscDurable = true
			n.vscMu.Unlock()
		}
		return set, nil
	}
	n.vscMu.Unlock()
	count := uint32(n.manifest.NumBallots) //nolint:gosec // validated at setup
	e := &vscEngine{
		n:             n,
		announceFrom:  make(map[uint16]bool, n.nv),
		announceReady: make(chan struct{}),
		echoed:        make(map[uint16]bool, n.nv),
		finalSets:     make(map[[32]byte]*finalTally, 2),
		finalFrom:     make(map[uint16][32]byte, n.nv),
		finalCh:       make(chan []VotedBallot, 1),
		missing:       make(map[uint64]bool),
		missingDone:   make(chan struct{}, 1),
	}
	eng, err := n.engine(EngineConfig{
		N: n.nv, F: n.fv, Self: n.self, Ballots: count,
		Coin: n.coin, Clock: n.clk,
		Send: func(frame []byte) {
			if err := transport.Multicast(n.ep, n.peers, frame); err != nil {
				n.metrics.SendErrors.Add(1)
			}
		},
		Validate: n.validEntry,
		Adopt:    n.adoptEntry,
	})
	if err != nil {
		return nil, err
	}
	e.eng = eng

	// Install the engine and replay traffic that arrived early.
	n.vscMu.Lock()
	if n.vsc != nil {
		n.vscMu.Unlock()
		return nil, errors.New("vc: vote set consensus already running")
	}
	n.vsc = e
	buffered := n.vscBuffer
	n.vscBuffer = nil
	n.vscMu.Unlock()

	// A failed run uninstalls its engine so the caller can retry — the
	// recovery path of a node restarted mid-consensus, whose first attempts
	// can starve until enough peers finish and answer with VSC-FINAL.
	succeeded := false
	defer func() {
		if succeeded {
			return
		}
		n.vscMu.Lock()
		if n.vsc == e {
			n.vsc = nil
		}
		n.vscMu.Unlock()
	}()

	// Step 1-2: announce every certified code (batched over all ballots).
	own := n.certifiedEntries()
	if n.byz == ConsensusLiar {
		own = nil // withhold everything
	}
	e.onAnnounce(n.self, &wire.Announce{Sender: n.self, Entries: own})
	frame := wire.Encode(&wire.Announce{Sender: n.self, Entries: own})
	if err := transport.Multicast(n.ep, n.peers, frame); err != nil {
		n.metrics.SendErrors.Add(1)
	}
	for _, bm := range buffered {
		e.handle(bm.from, bm.msg)
	}

	// Wait for Nv-fv ANNOUNCE batches (per-ballot waiting in the paper; one
	// batch per node covers all ballots). A VSC-FINAL quorum short-circuits
	// every remaining stage: fv+1 matching signed sets contain an honest
	// one, so the agreement is already decided.
	select {
	case <-e.announceReady:
	case set := <-e.finalCh:
		return n.finishConsensus(set, &succeeded)
	case <-ctx.Done():
		return nil, fmt.Errorf("vc: waiting for announces: %w", ctx.Err())
	case <-n.done:
		return nil, ErrStopped
	}

	// Step 3: agreement on the vote set through the selected engine. The
	// proposal is the node's certified set (enriched by adopted announces);
	// the inputs vector marks, per ballot, whether a certified code is
	// locally known — each engine binds to the representation its protocol
	// uses.
	proposal := n.certifiedEntries()
	inputs := make([]byte, count)
	n.forEachCertified(func(serial uint64, _ []byte) {
		inputs[serial-1] = 1
	})
	if n.byz == ConsensusLiar {
		proposal = nil
		for i := range inputs {
			inputs[i] = 1 - inputs[i]
		}
	}
	if err := e.eng.Start(proposal, inputs); err != nil {
		return nil, err
	}
	// The engine wait runs under a cancellable child context so the waiter
	// goroutine always exits when VSC-FINAL adoption or shutdown wins the
	// select below — without it, a caller context with no deadline would
	// leak the goroutine (and pin the engine) forever.
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()
	resCh := make(chan batchResult, 1)
	go func() {
		decisions, err := e.eng.Results(rctx)
		resCh <- batchResult{decisions, err}
	}()
	var decisions []byte
	select {
	case r := <-resCh:
		if r.err != nil {
			return nil, r.err
		}
		decisions = r.decisions
	case set := <-e.finalCh:
		return n.finishConsensus(set, &succeeded)
	case <-n.done:
		return nil, ErrStopped
	}

	// Steps 4-5: translate decisions; recover codes we lack.
	if err := e.recover(ctx, decisions); err != nil {
		return nil, err
	}
	set := make([]VotedBallot, 0, len(decisions))
	n.forEachCertified(func(serial uint64, code []byte) {
		if decisions[serial-1] == 1 {
			set = append(set, VotedBallot{Serial: serial, Code: code})
		}
	})
	sort.Slice(set, func(i, j int) bool { return set[i].Serial < set[j].Serial })
	// Sanity: every decided-1 ballot must now have a code.
	decidedOnes := 0
	for _, d := range decisions {
		if d == 1 {
			decidedOnes++
		}
	}
	if decidedOnes != len(set) {
		return nil, fmt.Errorf("vc: %d ballots decided voted but only %d codes known", decidedOnes, len(set))
	}
	return n.finishConsensus(set, &succeeded)
}

// batchResult carries a consensus batch outcome across the select.
type batchResult struct {
	decisions []byte
	err       error
}

// finishConsensus installs and journals the agreed vote set — shared by the
// full protocol path and VSC-FINAL adoption. The result is installed in
// memory *before* the append (the mutation-before-append rule every record
// follows): a snapshot racing the append must serialize a state that
// already contains the result, or it would capture without it and then
// truncate the log holding the record. The set is the input to the signed
// BB push, so it is journaled and synced (once per election — the fsync is
// off the hot path) before the caller can act on it; a Strict node refuses
// to return a result that did not land and uninstalls it for the retry.
func (n *Node) finishConsensus(set []VotedBallot, succeeded *bool) ([]VotedBallot, error) {
	n.vscMu.Lock()
	n.vscDone = true
	n.vscResult = append([]VotedBallot(nil), set...)
	n.vscMu.Unlock()
	err := n.journalAppend(encVSC(set))
	if err == nil && n.journal != nil {
		if err = n.journal.Sync(); err != nil {
			n.metrics.JournalErrors.Add(1)
		}
	}
	if err != nil && n.strictJournal() {
		n.metrics.StrictRefusals.Add(1)
		n.vscMu.Lock()
		n.vscDone = false
		n.vscResult = nil
		n.vscMu.Unlock()
		return nil, fmt.Errorf("vc: vote set not durable: %w", err)
	}
	n.vscMu.Lock()
	n.vscDurable = err == nil
	n.vscMu.Unlock()
	*succeeded = true
	return set, nil
}

// certifiedEntries snapshots all locally certified (serial, code, UCERT).
func (n *Node) certifiedEntries() []wire.AnnounceEntry {
	var out []wire.AnnounceEntry
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		states := make(map[uint64]*ballotState, len(sh.ballots))
		for serial, st := range sh.ballots {
			states[serial] = st
		}
		sh.mu.Unlock()
		for serial, st := range states {
			st.mu.Lock()
			if st.cert != nil {
				out = append(out, wire.AnnounceEntry{Serial: serial, Code: st.usedCode, Cert: *st.cert})
			}
			st.mu.Unlock()
		}
	}
	return out
}

// forEachCertified calls fn for every ballot with a certified code.
func (n *Node) forEachCertified(fn func(serial uint64, code []byte)) {
	for _, e := range n.certifiedEntries() {
		fn(e.Serial, e.Code)
	}
}

// validEntry reports whether an announce entry carries a well-formed
// uniqueness certificate for an in-range ballot. It is a pure function of
// the entry and the (shared) manifest — no node-local state — so every
// honest node judges an entry identically; the ACS engine relies on this to
// filter delivered proposals deterministically.
func (n *Node) validEntry(entry *wire.AnnounceEntry) bool {
	if entry.Serial == 0 || entry.Serial > uint64(n.manifest.NumBallots) {
		return false
	}
	cert := entry.Cert
	return cert.Serial == entry.Serial && string(cert.Code) == string(entry.Code) && n.VerifyUCert(&cert)
}

// adoptEntry installs a certified code learned from a peer (ANNOUNCE,
// RECOVER-RESPONSE, or an ACS reliable-broadcast payload). Returns false
// for invalid entries.
func (n *Node) adoptEntry(entry *wire.AnnounceEntry) bool {
	if entry.Serial == 0 || entry.Serial > uint64(n.manifest.NumBallots) {
		return false
	}
	st := n.state(entry.Serial)
	st.mu.Lock()
	already := st.cert != nil
	st.mu.Unlock()
	if already {
		return true // UCERT uniqueness: it must be the same code
	}
	cert := entry.Cert
	if !n.validEntry(entry) {
		return false
	}
	var installed bool
	st.mu.Lock()
	if st.cert == nil {
		st.cert = &cert
		st.usedCode = append([]byte(nil), entry.Code...)
		if st.status == NotVoted {
			st.status = Pending
		}
		installed = true
	}
	st.mu.Unlock()
	if installed {
		// An adopted certificate feeds our consensus input: journal it so
		// a restarted node announces the same certified set.
		n.journalAppend(encUCert(entry.Serial, &cert))
	}
	return true
}

// vscEngine holds the in-flight vote-set-consensus state that is common to
// every ConsensusEngine: announce bookkeeping, the VSC-FINAL adoption
// channel, and missing-code recovery. Engine-kind frames route to eng.
type vscEngine struct {
	n   *Node
	eng ConsensusEngine

	mu            sync.Mutex
	announceFrom  map[uint16]bool
	announceReady chan struct{}
	readyClosed   bool
	echoed        map[uint16]bool // peers already sent an ANNOUNCE echo

	finalMu   sync.Mutex
	finalSets map[[32]byte]*finalTally
	finalFrom map[uint16][32]byte // each sender's current vote (one per peer)
	finalSent bool
	finalCh   chan []VotedBallot

	missingMu   sync.Mutex
	missing     map[uint64]bool
	missingDone chan struct{}
}

// finalTally accumulates matching signed VSC-FINAL sets by canonical hash.
type finalTally struct {
	set     []VotedBallot
	senders uint64 // bitmask of distinct verified senders
}

func (n *Node) routeConsensus(from uint16, msg wire.Message) {
	n.vscMu.Lock()
	e := n.vsc
	done := n.vscDone
	if e == nil {
		if done {
			// A recovered node whose consensus already completed runs no
			// engine, but peers redoing consensus (their own restart) still
			// need answers: the final set for an ANNOUNCE, certified codes
			// for a RECOVER-REQUEST.
			n.vscMu.Unlock()
			n.answerConsensusIdle(from, msg)
			return
		}
		if len(n.vscBuffer) < maxVscBuffer {
			n.vscBuffer = append(n.vscBuffer, bufferedMsg{from: from, msg: msg})
		}
		n.vscMu.Unlock()
		return
	}
	n.vscMu.Unlock()
	e.handle(from, msg)
}

// answerConsensusIdle serves consensus-phase recovery traffic on a node
// that holds a journaled final result but runs no engine.
func (n *Node) answerConsensusIdle(from uint16, msg wire.Message) {
	switch m := msg.(type) {
	case *wire.Announce:
		for i := range m.Entries {
			if !n.adoptEntry(&m.Entries[i]) {
				n.metrics.BadMessages.Add(1)
			}
		}
		n.sendFinalTo(from)
	case *wire.RecoverRequest:
		n.answerRecoverRequest(from, m)
	}
}

// sendFinalTo unicasts this node's signed final vote set (no-op until
// consensus completed).
func (n *Node) sendFinalTo(to uint16) {
	n.vscMu.Lock()
	if !n.vscDone {
		n.vscMu.Unlock()
		return
	}
	set := append([]VotedBallot(nil), n.vscResult...)
	n.vscMu.Unlock()
	entries := make([]wire.VSCEntry, 0, len(set))
	for _, vb := range set {
		entries = append(entries, wire.VSCEntry{Serial: vb.Serial, Code: vb.Code})
	}
	msg := &wire.VSCFinal{Sender: n.self, Entries: entries, Sig: n.SignVoteSet(set)}
	if err := n.ep.Send(transport.NodeID(to), wire.Encode(msg)); err != nil {
		n.metrics.SendErrors.Add(1)
	}
}

func (e *vscEngine) handle(from uint16, msg wire.Message) {
	switch m := msg.(type) {
	case *wire.Announce:
		e.onAnnounce(from, m)
	case *wire.Consensus, *wire.RBCEcho, *wire.RBCReady, *wire.ABA:
		e.eng.Handle(from, msg)
	case *wire.RecoverRequest:
		e.onRecoverRequest(from, m)
	case *wire.RecoverResponse:
		e.onRecoverResponse(m)
	case *wire.VSCFinal:
		e.onVSCFinal(from, m)
	}
}

func (e *vscEngine) onAnnounce(from uint16, m *wire.Announce) {
	for i := range m.Entries {
		if !e.n.adoptEntry(&m.Entries[i]) {
			e.n.metrics.BadMessages.Add(1)
		}
	}
	e.mu.Lock()
	dup := e.announceFrom[from]
	echo := dup && from != e.n.self && !e.echoed[from]
	if echo {
		e.echoed[from] = true
	}
	if !dup {
		e.announceFrom[from] = true
		if len(e.announceFrom) >= e.n.hv && !e.readyClosed {
			e.readyClosed = true
			close(e.announceReady)
		}
	}
	e.mu.Unlock()
	if !dup {
		return
	}
	// A duplicate ANNOUNCE means the peer restarted mid-consensus and is
	// waiting for announces nobody will resend. Echo ours back (once per
	// peer, so network-duplicated frames cannot ping-pong), and hand it the
	// final set if we already hold one.
	if echo {
		frame := wire.Encode(&wire.Announce{Sender: e.n.self, Entries: e.n.certifiedEntries()})
		if err := e.n.ep.Send(transport.NodeID(from), frame); err != nil {
			e.n.metrics.SendErrors.Add(1)
		}
	}
	e.n.sendFinalTo(from)
}

// onVSCFinal verifies a peer's signed final vote set; fv+1 matching sets
// from distinct senders contain an honest one, so the set is the agreed
// result and the engine adopts it (the restarted-mid-consensus fast path).
func (e *vscEngine) onVSCFinal(from uint16, m *wire.VSCFinal) {
	n := e.n
	if m.Sender != from || int(from) >= n.nv {
		n.metrics.BadMessages.Add(1)
		return
	}
	set := make([]VotedBallot, 0, len(m.Entries))
	for i := range m.Entries {
		set = append(set, VotedBallot{Serial: m.Entries[i].Serial, Code: m.Entries[i].Code})
	}
	if !VerifyVoteSetSig(&n.manifest, int(from), set, m.Sig) {
		n.metrics.BadMessages.Add(1)
		return
	}
	hash := CanonicalVoteSetHash(n.manifest.ElectionID, set)
	e.finalMu.Lock()
	defer e.finalMu.Unlock()
	// The uint64 sender bitmask relies on the system-wide Nv <= 64 cap
	// (ea.Setup validates it; consensus.NewBatch refuses larger clusters
	// for the same reason).
	bit := uint64(1) << from
	// One vote per sender, latest set wins: a Byzantine peer streaming
	// distinct fabricated sets (its own key signs them all) replaces its
	// previous vote instead of growing the tally without bound — state
	// stays O(Nv) sets.
	if prev, voted := e.finalFrom[from]; voted {
		if prev == hash {
			return
		}
		if pt := e.finalSets[prev]; pt != nil {
			pt.senders &^= bit
			if pt.senders == 0 {
				delete(e.finalSets, prev)
			}
		}
	}
	e.finalFrom[from] = hash
	t := e.finalSets[hash]
	if t == nil {
		t = &finalTally{set: set}
		e.finalSets[hash] = t
	}
	t.senders |= bit
	if bits.OnesCount64(t.senders) >= n.fv+1 && !e.finalSent {
		e.finalSent = true
		e.finalCh <- append([]VotedBallot(nil), t.set...)
	}
}

func (e *vscEngine) onRecoverRequest(from uint16, m *wire.RecoverRequest) {
	e.n.answerRecoverRequest(from, m)
}

// answerRecoverRequest serves certified codes to a recovering peer — shared
// by the engine and the post-consensus idle path.
func (n *Node) answerRecoverRequest(from uint16, m *wire.RecoverRequest) {
	if len(m.Serials) == 0 {
		return
	}
	resp := &wire.RecoverResponse{}
	for _, serial := range m.Serials {
		if serial == 0 || serial > uint64(n.manifest.NumBallots) {
			continue
		}
		st := n.state(serial)
		st.mu.Lock()
		if st.cert != nil {
			resp.Entries = append(resp.Entries, wire.AnnounceEntry{
				Serial: serial, Code: st.usedCode, Cert: *st.cert,
			})
		}
		st.mu.Unlock()
	}
	if len(resp.Entries) == 0 {
		return
	}
	if err := n.ep.Send(transport.NodeID(from), wire.Encode(resp)); err != nil {
		n.metrics.SendErrors.Add(1)
	}
}

func (e *vscEngine) onRecoverResponse(m *wire.RecoverResponse) {
	for i := range m.Entries {
		entry := &m.Entries[i]
		if !e.n.adoptEntry(entry) {
			e.n.metrics.BadMessages.Add(1)
			continue
		}
		e.missingMu.Lock()
		if e.missing[entry.Serial] {
			delete(e.missing, entry.Serial)
			if len(e.missing) == 0 {
				select {
				case e.missingDone <- struct{}{}:
				default:
				}
			}
		}
		e.missingMu.Unlock()
	}
}

// recover implements step 5b: fetch certified codes for ballots that
// decided "voted" but whose code is locally unknown. Honest nodes that
// entered consensus with 1 possess the code (see §III-E), so responses are
// guaranteed; requests are retransmitted until satisfied.
func (e *vscEngine) recover(ctx context.Context, decisions []byte) error {
	have := make(map[uint64]bool)
	e.n.forEachCertified(func(serial uint64, _ []byte) { have[serial] = true })

	e.missingMu.Lock()
	for i, d := range decisions {
		serial := uint64(i) + 1
		if d == 1 && !have[serial] {
			e.missing[serial] = true
		}
	}
	n := len(e.missing)
	e.missingMu.Unlock()
	if n == 0 {
		return nil
	}
	for {
		e.missingMu.Lock()
		serials := make([]uint64, 0, len(e.missing))
		for s := range e.missing {
			serials = append(serials, s)
		}
		e.missingMu.Unlock()
		if len(serials) == 0 {
			return nil
		}
		e.n.metrics.Recoveries.Add(int64(len(serials)))
		frame := wire.Encode(&wire.RecoverRequest{Serials: serials})
		if err := transport.Multicast(e.n.ep, e.n.peers, frame); err != nil {
			e.n.metrics.SendErrors.Add(1)
		}
		// Pace the retransmission on the node's injected clock, so a
		// simulated election retries in virtual time instead of parking a
		// goroutine on a wall-clock timer the simulator cannot see. For
		// non-real injected clocks a longer wall-clock backstop guards
		// liveness (a manually-advanced Fake that nobody moves during
		// recovery would otherwise never retry); it is 4× the interval so
		// a live simulation's virtual retry always wins, and on the real
		// clock it is omitted — the injected timer already is the wall
		// clock.
		retry := make(chan struct{}, 1)
		tm := clock.AfterFunc(e.n.clk, recoverRetryInterval, func() {
			select {
			case retry <- struct{}{}:
			default:
			}
		})
		var backstop <-chan time.Time
		if _, isReal := e.n.clk.(clock.Real); !isReal {
			backstop = time.After(4 * recoverRetryInterval)
		}
		select {
		case <-e.missingDone:
			tm.Stop()
			e.missingMu.Lock()
			empty := len(e.missing) == 0
			e.missingMu.Unlock()
			if empty {
				return nil
			}
		case <-retry:
		case <-backstop:
			tm.Stop()
		case <-ctx.Done():
			tm.Stop()
			return fmt.Errorf("vc: recovering vote codes: %w", ctx.Err())
		case <-e.n.done:
			tm.Stop()
			return ErrStopped
		}
	}
}

// CanonicalVoteSetHash hashes a vote set for signing and BB comparison.
func CanonicalVoteSetHash(electionID string, set []VotedBallot) [32]byte {
	h := sha256.New()
	h.Write([]byte("ddemos/v1/vote-set"))
	h.Write([]byte(electionID))
	for _, vb := range set {
		h.Write(sig.Uint64Bytes(vb.Serial))
		h.Write(sig.Uint64Bytes(uint64(len(vb.Code))))
		h.Write(vb.Code)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// SignVoteSet signs the node's final vote set for the BB push.
func (n *Node) SignVoteSet(set []VotedBallot) []byte {
	hash := CanonicalVoteSetHash(n.manifest.ElectionID, set)
	return sig.Sign(n.priv, voteSetDomain, hash[:])
}

// SignVoteSetWith signs a vote set with an explicit VC private key, for
// benchmark and offline tooling that holds the election data without
// running a VC node.
func SignVoteSetWith(priv ed25519.PrivateKey, electionID string, set []VotedBallot) []byte {
	hash := CanonicalVoteSetHash(electionID, set)
	return sig.Sign(priv, voteSetDomain, hash[:])
}

// VerifyVoteSetSig checks a vote-set signature from VC node `index`.
func VerifyVoteSetSig(manifest *ea.Manifest, index int, set []VotedBallot, sigBytes []byte) bool {
	if index < 0 || index >= len(manifest.VCPublics) {
		return false
	}
	hash := CanonicalVoteSetHash(manifest.ElectionID, set)
	return sig.Verify(manifest.VCPublics[index], sigBytes, voteSetDomain, hash[:])
}
