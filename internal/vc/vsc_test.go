package vc

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"ddemos/internal/ballot"
)

// runVSC closes the polls and runs vote-set consensus on all (non-isolated)
// nodes concurrently, returning each node's set.
func (c *cluster) runVSC(skip map[int]bool) [][]VotedBallot {
	c.t.Helper()
	c.clk.Set(c.data.Manifest.VotingEnd.Add(time.Second))
	sets := make([][]VotedBallot, len(c.nodes))
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	for i, n := range c.nodes {
		if skip[i] {
			continue
		}
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			sets[i], errs[i] = n.VoteSetConsensus(ctx)
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if !skip[i] && err != nil {
			c.t.Fatalf("node %d vote set consensus: %v", i, err)
		}
	}
	return sets
}

func assertSetsEqual(t *testing.T, sets [][]VotedBallot, skip map[int]bool) []VotedBallot {
	t.Helper()
	var ref []VotedBallot
	refIdx := -1
	for i, s := range sets {
		if skip[i] {
			continue
		}
		if refIdx == -1 {
			ref, refIdx = s, i
			continue
		}
		if len(s) != len(ref) {
			t.Fatalf("node %d set size %d != node %d size %d", i, len(s), refIdx, len(ref))
		}
		for j := range s {
			if s[j].Serial != ref[j].Serial || !bytes.Equal(s[j].Code, ref[j].Code) {
				t.Fatalf("node %d set differs at %d", i, j)
			}
		}
	}
	return ref
}

func TestVSCAllVotedBallotsIncluded(t *testing.T) {
	c := newCluster(t, 10, 4, nil)
	voted := map[uint64][]byte{}
	for serial := uint64(1); serial <= 6; serial++ {
		part := ballot.PartID(serial % 2) //nolint:gosec // 0/1
		opt := int(serial) % 2
		if _, err := c.vote(serial, part, opt, int(serial)%4); err != nil {
			t.Fatal(err)
		}
		code, _ := c.data.Ballots[serial-1].CodeFor(part, opt)
		voted[serial] = code
	}
	sets := c.runVSC(nil)
	ref := assertSetsEqual(t, sets, nil)
	if len(ref) != len(voted) {
		t.Fatalf("set has %d ballots, want %d", len(ref), len(voted))
	}
	for _, vb := range ref {
		want, ok := voted[vb.Serial]
		if !ok || !bytes.Equal(vb.Code, want) {
			t.Fatalf("set contains wrong entry for serial %d", vb.Serial)
		}
	}
}

func TestVSCEmptyElection(t *testing.T) {
	c := newCluster(t, 5, 4, nil)
	sets := c.runVSC(nil)
	ref := assertSetsEqual(t, sets, nil)
	if len(ref) != 0 {
		t.Fatalf("empty election produced %d votes", len(ref))
	}
}

func TestVSCWithCrashedNode(t *testing.T) {
	// A receipt was issued while all nodes were alive; then one node
	// crashes. The remaining nodes must still agree and keep the vote
	// (the safety contract: receipt => published).
	c := newCluster(t, 6, 4, nil)
	if _, err := c.vote(2, ballot.PartA, 1, 1); err != nil {
		t.Fatal(err)
	}
	c.net.Isolate(3, true)
	skip := map[int]bool{3: true}
	sets := c.runVSC(skip)
	ref := assertSetsEqual(t, sets, skip)
	if len(ref) != 1 || ref[0].Serial != 2 {
		t.Fatalf("vote lost: %+v", ref)
	}
}

func TestVSCConsensusLiar(t *testing.T) {
	// A Byzantine node that withholds announcements and inverts its
	// consensus inputs: honest nodes must still agree on the true set.
	c := newCluster(t, 6, 4, map[int]Byzantine{2: ConsensusLiar})
	if _, err := c.vote(1, ballot.PartB, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.vote(4, ballot.PartA, 1, 1); err != nil {
		t.Fatal(err)
	}
	sets := c.runVSC(nil)
	skip := map[int]bool{2: true} // liar's own set may differ; ignore it
	ref := assertSetsEqual(t, sets, skip)
	if len(ref) != 2 {
		t.Fatalf("honest nodes decided %d votes, want 2", len(ref))
	}
	if ref[0].Serial != 1 || ref[1].Serial != 4 {
		t.Fatalf("wrong serials: %+v", ref)
	}
}

func TestVSCRecovery(t *testing.T) {
	// Force the 5b recovery path: node 3 is partitioned while a vote
	// completes, then rejoins for consensus. It may decide 1 without
	// knowing the code and must recover it from peers.
	c := newCluster(t, 4, 4, nil)
	c.net.Isolate(3, true)
	if _, err := c.vote(1, ballot.PartA, 0, 0); err != nil {
		t.Fatal(err)
	}
	c.net.Isolate(3, false)
	sets := c.runVSC(nil)
	ref := assertSetsEqual(t, sets, nil)
	if len(ref) != 1 || ref[0].Serial != 1 {
		t.Fatalf("recovered set wrong: %+v", ref)
	}
	code, _ := c.data.Ballots[0].CodeFor(ballot.PartA, 0)
	if !bytes.Equal(ref[0].Code, code) {
		t.Fatal("recovered wrong code")
	}
}

func TestVSCPendingVoteIncluded(t *testing.T) {
	// A vote that got a UCERT but whose receipt reconstruction was cut off
	// (no receipt issued) may legitimately be included: nodes hold the
	// certified code. The safety contract only requires receipt => included;
	// included without receipt is fine.
	c := newCluster(t, 3, 4, nil)
	code, _ := c.data.Ballots[2].CodeFor(ballot.PartB, 1)
	// Submit with a very short deadline so reconstruction may not finish at
	// the responder; the multicasts still propagate.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_, _ = c.nodes[0].SubmitVote(ctx, 3, code)
	cancel()
	sets := c.runVSC(nil)
	ref := assertSetsEqual(t, sets, nil)
	// The ballot either made it in full (normal) or not at all (if the vote
	// never certified); both are consistent outcomes, but all nodes must
	// agree — already asserted by assertSetsEqual.
	for _, vb := range ref {
		if vb.Serial != 3 || !bytes.Equal(vb.Code, code) {
			t.Fatalf("unexpected entry %+v", vb)
		}
	}
}

func TestVSCSignatures(t *testing.T) {
	c := newCluster(t, 3, 4, nil)
	if _, err := c.vote(1, ballot.PartA, 0, 0); err != nil {
		t.Fatal(err)
	}
	sets := c.runVSC(nil)
	set := sets[0]
	sg := c.nodes[0].SignVoteSet(set)
	if !VerifyVoteSetSig(&c.data.Manifest, 0, set, sg) {
		t.Fatal("valid vote set signature rejected")
	}
	if VerifyVoteSetSig(&c.data.Manifest, 1, set, sg) {
		t.Fatal("signature attributed to wrong node accepted")
	}
	if VerifyVoteSetSig(&c.data.Manifest, 9, set, sg) {
		t.Fatal("out-of-range node index accepted")
	}
	mutated := append([]VotedBallot(nil), set...)
	mutated[0].Serial++
	if VerifyVoteSetSig(&c.data.Manifest, 0, mutated, sg) {
		t.Fatal("signature over mutated set accepted")
	}
}

func TestCanonicalVoteSetHashOrderSensitive(t *testing.T) {
	a := []VotedBallot{{Serial: 1, Code: []byte{1}}, {Serial: 2, Code: []byte{2}}}
	b := []VotedBallot{{Serial: 2, Code: []byte{2}}, {Serial: 1, Code: []byte{1}}}
	if CanonicalVoteSetHash("e", a) == CanonicalVoteSetHash("e", b) {
		t.Fatal("hash must be order sensitive (sets are sorted canonically)")
	}
	if CanonicalVoteSetHash("e", a) != CanonicalVoteSetHash("e", a) {
		t.Fatal("hash must be deterministic")
	}
	if CanonicalVoteSetHash("e", a) == CanonicalVoteSetHash("f", a) {
		t.Fatal("hash must bind the election id")
	}
}

func TestVSCDoubleRunRejected(t *testing.T) {
	c := newCluster(t, 2, 4, nil)
	c.clk.Set(c.data.Manifest.VotingEnd.Add(time.Second))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, _ = c.nodes[0].VoteSetConsensus(ctx)
	}()
	// Give the first run a moment to install, then a second run must fail.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := c.nodes[0].VoteSetConsensus(ctx); err == nil {
		t.Fatal("second concurrent vote set consensus must be rejected")
	}
	// Let the other nodes run so the first finishes.
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, _ = c.nodes[i].VoteSetConsensus(ctx)
		}(i)
	}
	wg.Wait()
}
