// Package voter implements the voter client of §III-F. The voter owns a
// paper(-equivalent) ballot, picks one of its two parts at random, submits
// the vote code of her chosen option to a randomly selected VC node, and
// compares the returned receipt with the one printed next to the code. Per
// Definition 1 ([d]-patience), a voter that obtains no valid receipt within
// her patience window blacklists the node and resubmits the same code to
// another randomly chosen node — the behaviour behind the liveness bound of
// Theorem 1.
//
// No cryptography runs on the voter's device: submitting a 160-bit code and
// string-comparing a 64-bit receipt is all it takes, which is what makes
// voting possible from SMS or a dumb terminal.
package voter

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/bb"
	"ddemos/internal/crypto/votecode"
)

// Service is a voter's view of one VC node (direct handle or HTTP client).
type Service interface {
	SubmitVote(ctx context.Context, serial uint64, code []byte) (receipt []byte, err error)
}

// Client is one voter.
type Client struct {
	// Ballot is the voter's ballot, received over the secure distribution
	// channel.
	Ballot *ballot.Ballot
	// Services are the VC nodes the voter knows (the paper requires at
	// least fv+1 URLs).
	Services []Service
	// Patience is d from Definition 1: how long to wait for a receipt
	// before blacklisting a node and retrying elsewhere. Defaults to 5s.
	Patience time.Duration
}

// CastResult records a successful vote for later verification/delegation.
type CastResult struct {
	Serial      uint64
	Part        ballot.PartID
	OptionIndex int
	Code        []byte
	Receipt     []byte
	// Attempts counts submissions including the successful one.
	Attempts int
}

// Errors returned by Cast.
var (
	// ErrExhausted means every known VC node was tried without a receipt.
	ErrExhausted = errors.New("voter: all VC nodes blacklisted without a valid receipt")
	// ErrReceiptMismatch means a node returned a receipt different from the
	// ballot's printed one — proof of misbehaviour.
	ErrReceiptMismatch = errors.New("voter: receipt does not match ballot")
)

// Cast votes for the option at optionIndex, implementing [d]-patient
// resubmission. The ballot part is chosen uniformly at random — that choice
// doubles as the voter's contribution to the ZK challenge (§III-B).
func (c *Client) Cast(ctx context.Context, optionIndex int) (*CastResult, error) {
	part, err := randomPart()
	if err != nil {
		return nil, err
	}
	return c.CastWithPart(ctx, optionIndex, part)
}

// CastWithPart votes with an explicit part choice (tests and auditors that
// need determinism; real voters should use Cast).
func (c *Client) CastWithPart(ctx context.Context, optionIndex int, part ballot.PartID) (*CastResult, error) {
	if len(c.Services) == 0 {
		return nil, errors.New("voter: no VC nodes configured")
	}
	code, err := c.Ballot.CodeFor(part, optionIndex)
	if err != nil {
		return nil, err
	}
	expected := c.Ballot.Parts[part].Lines[optionIndex].Receipt
	patience := c.Patience
	if patience <= 0 {
		patience = 5 * time.Second
	}

	blacklist := make(map[int]bool, len(c.Services))
	attempts := 0
	var lastErr error = ErrExhausted
	for len(blacklist) < len(c.Services) {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("voter: casting: %w", err)
		}
		idx, err := pickRandom(len(c.Services), blacklist)
		if err != nil {
			return nil, err
		}
		attempts++
		subCtx, cancel := context.WithTimeout(ctx, patience)
		receipt, err := c.Services[idx].SubmitVote(subCtx, c.Ballot.Serial, code)
		cancel()
		switch {
		case err != nil:
			blacklist[idx] = true
			lastErr = err
		case !votecode.Equal(receipt, expected):
			blacklist[idx] = true
			lastErr = ErrReceiptMismatch
		default:
			return &CastResult{
				Serial:      c.Ballot.Serial,
				Part:        part,
				OptionIndex: optionIndex,
				Code:        code,
				Receipt:     receipt,
				Attempts:    attempts,
			}, nil
		}
	}
	return nil, fmt.Errorf("%w (last error: %v)", ErrExhausted, lastErr)
}

// AuditPackage builds the delegation package for third-party auditing
// (§III-F): the cast code plus the full unused part; neither reveals the
// voter's choice.
func (c *Client) AuditPackage(result *CastResult) (*ballot.AuditPackage, error) {
	if result == nil {
		return c.Ballot.AbstainAuditPackage(), nil
	}
	return c.Ballot.NewAuditPackage(result.Part, result.Code)
}

// Verify performs the voter's two post-election checks against the BB
// (§III-F): (1) the cast code is in the tally set; (2) the unused part as
// opened on the BB matches the ballot's printed copy.
func (c *Client) Verify(reader *bb.Reader, result *CastResult) error {
	if result == nil {
		return errors.New("voter: nothing to verify (no cast result)")
	}
	voteSet, err := reader.VoteSet()
	if err != nil {
		return fmt.Errorf("voter: reading vote set: %w", err)
	}
	found := false
	for _, vb := range voteSet {
		if vb.Serial == result.Serial && votecode.Equal(vb.Code, result.Code) {
			found = true
			break
		}
	}
	if !found {
		return errors.New("voter: cast vote code missing from the tally set")
	}
	pkg, err := c.AuditPackage(result)
	if err != nil {
		return err
	}
	return VerifyUnusedPart(reader, pkg)
}

// VerifyUnusedPart checks that the opened BB rows of the package's unused
// part match the printed ⟨code, option⟩ association. Shared by voters and
// delegated auditors.
func VerifyUnusedPart(reader *bb.Reader, pkg *ballot.AuditPackage) error {
	man, err := reader.Manifest()
	if err != nil {
		return fmt.Errorf("voter: reading manifest: %w", err)
	}
	cast, err := reader.Cast()
	if err != nil {
		return fmt.Errorf("voter: reading cast data: %w", err)
	}
	result, err := reader.Result()
	if err != nil {
		return fmt.Errorf("voter: reading result: %w", err)
	}
	if pkg.Serial == 0 || pkg.Serial > uint64(man.NumBallots) {
		return fmt.Errorf("voter: serial %d out of range", pkg.Serial)
	}
	// Index the published openings of this ballot's unused part.
	opened := make(map[int]int) // row -> hot option index
	for _, o := range result.Openings {
		if o.Serial == pkg.Serial && o.Part == uint8(pkg.UnusedPartID) {
			opened[o.Row] = o.HotIndex
		}
	}
	codes := cast.Codes[pkg.Serial-1][pkg.UnusedPartID]
	for _, line := range pkg.UnusedPart.Lines {
		optIdx, err := man.OptionIndex(line.Option)
		if err != nil {
			return err
		}
		row := -1
		for r, code := range codes {
			if votecode.Equal(code, line.VoteCode) {
				row = r
				break
			}
		}
		if row == -1 {
			return fmt.Errorf("voter: code for option %q not found on BB (modification attack?)", line.Option)
		}
		hot, ok := opened[row]
		if !ok {
			return fmt.Errorf("voter: row %d of unused part not opened", row)
		}
		if hot != optIdx {
			return fmt.Errorf("voter: BB says row %d encodes option %d, ballot says %d — ballot tampered",
				row, hot, optIdx)
		}
	}
	return nil
}

func randomPart() (ballot.PartID, error) {
	b, err := rand.Int(rand.Reader, big.NewInt(2))
	if err != nil {
		return 0, fmt.Errorf("voter: sampling part: %w", err)
	}
	return ballot.PartID(b.Int64()), nil //nolint:gosec // 0 or 1
}

func pickRandom(n int, blacklist map[int]bool) (int, error) {
	candidates := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !blacklist[i] {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return 0, ErrExhausted
	}
	b, err := rand.Int(rand.Reader, big.NewInt(int64(len(candidates))))
	if err != nil {
		return 0, fmt.Errorf("voter: sampling node: %w", err)
	}
	return candidates[b.Int64()], nil
}
