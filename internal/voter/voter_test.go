package voter

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"ddemos/internal/ballot"
)

// fakeService scripts a VC node's behaviour.
type fakeService struct {
	receipt []byte
	err     error
	delay   time.Duration
	calls   int
}

func (f *fakeService) SubmitVote(ctx context.Context, _ uint64, _ []byte) ([]byte, error) {
	f.calls++
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if f.err != nil {
		return nil, f.err
	}
	return f.receipt, nil
}

func testBallot() *ballot.Ballot {
	mk := func(b byte) []byte { return bytes.Repeat([]byte{b}, 20) }
	rc := func(b byte) []byte { return bytes.Repeat([]byte{b}, 8) }
	return &ballot.Ballot{
		Serial: 1,
		Parts: [2]ballot.Part{
			{Lines: []ballot.Line{
				{VoteCode: mk(1), Option: "yes", Receipt: rc(0xA1)},
				{VoteCode: mk(2), Option: "no", Receipt: rc(0xA2)},
			}},
			{Lines: []ballot.Line{
				{VoteCode: mk(3), Option: "yes", Receipt: rc(0xB1)},
				{VoteCode: mk(4), Option: "no", Receipt: rc(0xB2)},
			}},
		},
	}
}

func TestCastHappyPath(t *testing.T) {
	b := testBallot()
	svc := &fakeService{receipt: b.Parts[0].Lines[0].Receipt}
	c := &Client{Ballot: b, Services: []Service{svc}}
	res, err := c.CastWithPart(context.Background(), 0, ballot.PartA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 || !bytes.Equal(res.Receipt, svc.receipt) {
		t.Fatalf("res = %+v", res)
	}
	if !bytes.Equal(res.Code, b.Parts[0].Lines[0].VoteCode) {
		t.Fatal("wrong code cast")
	}
}

func TestCastBlacklistsFailingNodes(t *testing.T) {
	b := testBallot()
	good := &fakeService{receipt: b.Parts[1].Lines[1].Receipt}
	bad1 := &fakeService{err: errors.New("down")}
	bad2 := &fakeService{err: errors.New("down")}
	c := &Client{Ballot: b, Services: []Service{bad1, bad2, good}, Patience: 100 * time.Millisecond}
	res, err := c.CastWithPart(context.Background(), 1, ballot.PartB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts < 1 || res.Attempts > 3 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	if bad1.calls+bad2.calls+good.calls != res.Attempts {
		t.Fatal("attempt accounting wrong")
	}
}

func TestCastPatienceTimeout(t *testing.T) {
	// A node that never answers within the patience window gets
	// blacklisted; the voter moves on ([d]-patience, Definition 1).
	b := testBallot()
	slow := &fakeService{receipt: b.Parts[0].Lines[0].Receipt, delay: time.Second}
	fast := &fakeService{receipt: b.Parts[0].Lines[0].Receipt}
	c := &Client{Ballot: b, Services: []Service{slow, fast}, Patience: 50 * time.Millisecond}
	start := time.Now()
	res, err := c.CastWithPart(context.Background(), 0, ballot.PartA)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("voter waited far beyond patience")
	}
	if res == nil || res.Receipt == nil {
		t.Fatal("no receipt")
	}
}

func TestCastRejectsWrongReceipt(t *testing.T) {
	// A malicious node returning a bogus receipt must be treated as faulty.
	b := testBallot()
	liar := &fakeService{receipt: bytes.Repeat([]byte{0xFF}, 8)}
	honest := &fakeService{receipt: b.Parts[0].Lines[0].Receipt}
	c := &Client{Ballot: b, Services: []Service{liar, honest}, Patience: 100 * time.Millisecond}
	res, err := c.CastWithPart(context.Background(), 0, ballot.PartA)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Receipt, b.Parts[0].Lines[0].Receipt) {
		t.Fatal("accepted forged receipt")
	}
}

func TestCastAllNodesFail(t *testing.T) {
	b := testBallot()
	c := &Client{
		Ballot:   b,
		Services: []Service{&fakeService{err: errors.New("down")}, &fakeService{err: errors.New("down")}},
		Patience: 50 * time.Millisecond,
	}
	if _, err := c.CastWithPart(context.Background(), 0, ballot.PartA); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
}

func TestCastValidation(t *testing.T) {
	b := testBallot()
	c := &Client{Ballot: b}
	if _, err := c.CastWithPart(context.Background(), 0, ballot.PartA); err == nil {
		t.Fatal("no services must fail")
	}
	c.Services = []Service{&fakeService{}}
	if _, err := c.CastWithPart(context.Background(), 9, ballot.PartA); err == nil {
		t.Fatal("bad option must fail")
	}
	if _, err := c.CastWithPart(context.Background(), 0, ballot.PartID(7)); err == nil {
		t.Fatal("bad part must fail")
	}
}

func TestCastContextCancelled(t *testing.T) {
	b := testBallot()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Client{Ballot: b, Services: []Service{&fakeService{delay: time.Second}}, Patience: 2 * time.Second}
	if _, err := c.Cast(ctx, 0); err == nil {
		t.Fatal("cancelled context must fail")
	}
}

func TestAuditPackageDelegation(t *testing.T) {
	b := testBallot()
	c := &Client{Ballot: b}
	res := &CastResult{Serial: 1, Part: ballot.PartA, OptionIndex: 0, Code: b.Parts[0].Lines[0].VoteCode}
	pkg, err := c.AuditPackage(res)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.UnusedPartID != ballot.PartB || !bytes.Equal(pkg.CastCode, res.Code) {
		t.Fatalf("pkg = %+v", pkg)
	}
	// The package must not contain the used part (privacy).
	for _, l := range pkg.UnusedPart.Lines {
		if bytes.Equal(l.VoteCode, res.Code) {
			t.Fatal("audit package leaks the used part")
		}
	}
	// Abstainer: package without cast code.
	abstain, err := c.AuditPackage(nil)
	if err != nil {
		t.Fatal(err)
	}
	if abstain.CastCode != nil {
		t.Fatal("abstain package has a cast code")
	}
}

// lookupService answers with the correct receipt for whatever code arrives,
// like an honest VC cluster would.
type lookupService struct {
	ballot *ballot.Ballot
}

func (s *lookupService) SubmitVote(_ context.Context, _ uint64, code []byte) ([]byte, error) {
	for p := 0; p < 2; p++ {
		for _, l := range s.ballot.Parts[p].Lines {
			if bytes.Equal(l.VoteCode, code) {
				return l.Receipt, nil
			}
		}
	}
	return nil, errors.New("unknown code")
}

func TestCastRandomPartDistribution(t *testing.T) {
	// Cast() must actually randomize the part choice (it is the voter's
	// contribution to the ZK challenge entropy).
	b := testBallot()
	c := &Client{Ballot: b, Services: []Service{&lookupService{ballot: b}}}
	seen := map[ballot.PartID]bool{}
	for i := 0; i < 128 && len(seen) < 2; i++ {
		res, err := c.Cast(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		seen[res.Part] = true
	}
	if len(seen) < 2 {
		t.Fatal("part choice does not appear random (one-sided after 128 casts)")
	}
}
