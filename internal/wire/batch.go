package wire

import "fmt"

// BatchVersion is the current encoding version of the Batch envelope. The
// version byte leads the body so the format can evolve (e.g. compressed
// batches) without a new Kind; decoders reject versions they do not know.
const BatchVersion uint8 = 1

// MaxBatchFrames bounds the number of frames one Batch may carry,
// protecting decoders from hostile counts independently of maxCount.
// Senders (transport.Batcher) must keep batches within this cap or the
// receiver rejects them as malformed.
const MaxBatchFrames = 1 << 16

// MaxBatchableFrame is the largest frame that may travel inside a Batch
// envelope: inner frames are byte-string fields, capped at maxBytesLen by
// the decoder. Senders must pass larger frames through unbatched (a large
// top-level frame is fine — only its individual fields are capped).
const MaxBatchableFrame = maxBytesLen

// Batch is the coalescing envelope of the high-throughput vote-collection
// pipeline: many protocol messages to the same destination, framed once and
// (with authenticated channels) signed once. Frames holds complete encoded
// messages — each exactly what Encode produces — so batching composes with
// every other message type without re-encoding. Batches must not nest.
type Batch struct {
	Frames [][]byte
}

// Kind implements Message.
func (*Batch) Kind() Kind { return KindBatch }

func (m *Batch) appendBody(dst []byte) []byte {
	dst = append(dst, BatchVersion)
	dst = appendU32(dst, uint32(len(m.Frames))) //nolint:gosec // bounded by callers
	for _, f := range m.Frames {
		dst = appendBytes(dst, f)
	}
	return dst
}

func decodeBatch(r *reader) *Batch {
	v := r.u8("batch version")
	if r.err != nil {
		return &Batch{}
	}
	if v != BatchVersion {
		r.err = fmt.Errorf("%w: unsupported batch version %d", ErrMalformed, v)
		return &Batch{}
	}
	n := r.count("batch frames")
	if r.err != nil {
		return &Batch{}
	}
	if n > MaxBatchFrames {
		r.err = fmt.Errorf("%w: batch of %d frames", ErrMalformed, n)
		return &Batch{}
	}
	m := &Batch{Frames: make([][]byte, 0, n)}
	for i := 0; i < n; i++ {
		f := r.bytes("batch frame")
		if r.err != nil {
			return m
		}
		if len(f) == 0 {
			r.err = fmt.Errorf("%w: empty batch frame", ErrMalformed)
			return m
		}
		if Kind(f[0]) == KindBatch {
			r.err = fmt.Errorf("%w: nested batch", ErrMalformed)
			return m
		}
		m.Frames = append(m.Frames, f)
	}
	return m
}

// Unpack decodes every inner frame. Nested batches are rejected at decode
// time, so the result contains only plain protocol messages.
func (m *Batch) Unpack() ([]Message, error) {
	out := make([]Message, 0, len(m.Frames))
	for _, f := range m.Frames {
		msg, err := Decode(f)
		if err != nil {
			return nil, err
		}
		out = append(out, msg)
	}
	return out, nil
}

// IsBatchFrame reports whether an encoded frame is a Batch envelope, letting
// transports split batches without decoding the inner messages.
func IsBatchFrame(frame []byte) bool {
	return len(frame) > 0 && Kind(frame[0]) == KindBatch
}

// SplitBatch parses a Batch frame and returns its inner frames without
// decoding them — the transport unbatching path. The returned slices alias
// fresh copies (the decoder copies every byte string), so callers may retain
// them after the input buffer is reused.
func SplitBatch(frame []byte) ([][]byte, error) {
	if !IsBatchFrame(frame) {
		return nil, fmt.Errorf("%w: not a batch frame", ErrMalformed)
	}
	m, err := Decode(frame)
	if err != nil {
		return nil, err
	}
	return m.(*Batch).Frames, nil
}

// EncodeBatch frames many encoded messages into one Batch envelope. A batch
// of one is passed through unwrapped: the envelope only pays for itself when
// it amortizes framing and signature cost over several messages.
func EncodeBatch(frames [][]byte) []byte {
	if len(frames) == 1 {
		return frames[0]
	}
	return Encode(&Batch{Frames: frames})
}
