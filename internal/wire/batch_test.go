package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	inner := []Message{
		&Endorse{Serial: 7, Code: []byte{1, 2, 3}},
		&Endorsement{Serial: 9, Code: []byte{5}, Signer: 3, Sig: bytes.Repeat([]byte{7}, 64)},
		&RecoverRequest{Serials: []uint64{1, 2, 3}},
	}
	m := &Batch{}
	for _, im := range inner {
		m.Frames = append(m.Frames, Encode(im))
	}
	got := roundTrip(t, m).(*Batch)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v want %+v", got, m)
	}
	msgs, err := got.Unpack()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(msgs, inner) {
		t.Fatalf("unpacked %+v want %+v", msgs, inner)
	}
}

func TestBatchEmptyRoundTrip(t *testing.T) {
	got := roundTrip(t, &Batch{}).(*Batch)
	if len(got.Frames) != 0 {
		t.Fatalf("got %d frames", len(got.Frames))
	}
}

func TestBatchRejectsUnknownVersion(t *testing.T) {
	frame := Encode(&Batch{Frames: [][]byte{Encode(&Endorse{Serial: 1, Code: []byte{1}})}})
	frame[1] = BatchVersion + 1 // version byte follows the Kind byte
	if _, err := Decode(frame); !errors.Is(err, ErrMalformed) {
		t.Fatalf("future version accepted: %v", err)
	}
}

func TestBatchRejectsNesting(t *testing.T) {
	innerBatch := Encode(&Batch{Frames: [][]byte{Encode(&Endorse{Serial: 1, Code: []byte{1}})}})
	frame := Encode(&Batch{Frames: [][]byte{innerBatch}})
	if _, err := Decode(frame); !errors.Is(err, ErrMalformed) {
		t.Fatalf("nested batch accepted: %v", err)
	}
}

func TestBatchRejectsEmptyFrame(t *testing.T) {
	frame := Encode(&Batch{Frames: [][]byte{{}}})
	if _, err := Decode(frame); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty inner frame accepted: %v", err)
	}
}

func TestBatchRejectsTruncation(t *testing.T) {
	frame := Encode(&Batch{Frames: [][]byte{
		Encode(&Endorse{Serial: 1, Code: []byte{1, 2, 3, 4}}),
	}})
	for cut := 1; cut < len(frame); cut++ {
		if _, err := Decode(frame[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBatchUnpackRejectsGarbageFrame(t *testing.T) {
	m := &Batch{Frames: [][]byte{{0xff, 0x01}}}
	// Garbage kinds survive the envelope decode of a locally built batch but
	// must fail Unpack.
	if _, err := m.Unpack(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("garbage inner frame unpacked: %v", err)
	}
}

func TestSplitBatch(t *testing.T) {
	frames := [][]byte{
		Encode(&Endorse{Serial: 1, Code: []byte{1}}),
		Encode(&Endorse{Serial: 2, Code: []byte{2}}),
	}
	out, err := SplitBatch(Encode(&Batch{Frames: frames}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, frames) {
		t.Fatalf("split %v want %v", out, frames)
	}
	if _, err := SplitBatch(frames[0]); err == nil {
		t.Fatal("non-batch frame split")
	}
}

func TestEncodeBatchSingletonPassthrough(t *testing.T) {
	frame := Encode(&Endorse{Serial: 1, Code: []byte{9}})
	if got := EncodeBatch([][]byte{frame}); !bytes.Equal(got, frame) {
		t.Fatalf("singleton batch wrapped: %x", got)
	}
	if !IsBatchFrame(EncodeBatch([][]byte{frame, frame})) {
		t.Fatal("multi-frame batch not wrapped")
	}
}
