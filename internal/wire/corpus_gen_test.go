package wire

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestRegenerateFuzzCorpus rewrites the checked-in seed corpora under
// testdata/fuzz from fuzzSeedFrames and a few hand-built malformed frames.
// Guarded by an env var so normal test runs never touch the tree:
//
//	DDEMOS_REGEN_CORPUS=1 go test ./internal/wire -run TestRegenerateFuzzCorpus
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("DDEMOS_REGEN_CORPUS") == "" {
		t.Skip("set DDEMOS_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	frames := fuzzSeedFrames()
	names := []string{
		"seed-endorse", "seed-endorsement", "seed-votep", "seed-announce",
		"seed-recover-request", "seed-recover-response", "seed-consensus",
		"seed-rbc-echo", "seed-rbc-ready", "seed-aba",
		"seed-batch", "seed-empty", "seed-unknown-kind", "seed-truncated",
	}
	if len(names) != len(frames) {
		t.Fatalf("have %d seed frames for %d names", len(frames), len(names))
	}
	for i, name := range names {
		write("FuzzDecode", name, frames[i])
	}
	endorse := frames[0]
	trailing := append(append([]byte(nil), endorse...), 0x00)
	write("FuzzDecode", "seed-trailing-bytes", trailing)

	acsNames := []string{
		"seed-rbc-echo", "seed-rbc-ready", "seed-aba",
		"seed-rbc-echo-empty", "seed-aba-decide",
		"seed-aba-bare-kind", "seed-rbc-ready-truncated", "seed-aba-trailing",
	}
	acsFrames := acsSeedFrames()
	if len(acsNames) != len(acsFrames) {
		t.Fatalf("have %d ACS seed frames for %d names", len(acsFrames), len(acsNames))
	}
	for i, name := range acsNames {
		write("FuzzACSDecode", name, acsFrames[i])
	}

	batchOf1 := Encode(&Batch{Frames: [][]byte{endorse}})
	write("FuzzSplitBatch", "seed-batch-3", frames[10])
	write("FuzzSplitBatch", "seed-batch-1", batchOf1)
	write("FuzzSplitBatch", "seed-batch-empty", Encode(&Batch{}))
	write("FuzzSplitBatch", "seed-not-a-batch", endorse)
	write("FuzzSplitBatch", "seed-truncated-count", []byte{byte(KindBatch), BatchVersion, 0, 0, 0, 2})
	// A hand-framed batch whose inner frame is itself a batch: the decoder
	// must reject nesting.
	nested := []byte{byte(KindBatch), BatchVersion, 0, 0, 0, 1, 0, 0, 0, byte(len(batchOf1))}
	nested = append(nested, batchOf1...)
	write("FuzzSplitBatch", "seed-nested-batch", nested)
}
