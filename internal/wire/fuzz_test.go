package wire

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzSeedFrames builds one representative encoded frame per message kind
// (plus a coalesced Batch) — the in-code half of the seed corpus; the
// checked-in half lives under testdata/fuzz.
func fuzzSeedFrames() [][]byte {
	cert := UCert{
		Serial: 7,
		Code:   []byte("code-7"),
		Sigs: []SigEntry{
			{Signer: 0, Sig: bytes.Repeat([]byte{0xAA}, 64)},
			{Signer: 2, Sig: bytes.Repeat([]byte{0xBB}, 64)},
		},
	}
	msgs := []Message{
		&Endorse{Serial: 1, Code: []byte("vote-code")},
		&Endorsement{Serial: 1, Code: []byte("vote-code"), Signer: 3, Sig: bytes.Repeat([]byte{0xCC}, 64)},
		&VoteP{
			Serial:     7,
			Code:       []byte("code-7"),
			ShareIndex: 4,
			ShareValue: bytes.Repeat([]byte{0x11}, 32),
			ShareSig:   bytes.Repeat([]byte{0x22}, 64),
			Cert:       cert,
		},
		&Announce{Sender: 1, Entries: []AnnounceEntry{{Serial: 7, Code: []byte("code-7"), Cert: cert}}},
		&RecoverRequest{Serials: []uint64{1, 2, 9}},
		&RecoverResponse{Entries: []AnnounceEntry{{Serial: 9, Code: []byte("code-9"), Cert: cert}}},
		&Consensus{Sender: 2, Groups: []ConsensusGroup{
			{Step: StepBVal, Round: 1, Value: 1, Instances: []uint32{0, 5, 9}},
			{Step: StepDecide, Round: 3, Value: 0, Instances: []uint32{2}},
		}},
		&RBCEcho{Sender: 1, Broadcaster: 1, Entries: []AnnounceEntry{{Serial: 7, Code: []byte("code-7"), Cert: cert}}},
		&RBCReady{Sender: 0, Broadcaster: 1, Hash: bytes.Repeat([]byte{0x5E}, 32)},
		&ABA{Sender: 3, Groups: []ABAGroup{
			{Step: ABAStepEst, Round: 1, Value: 1, Instances: []uint32{0, 2}},
			{Step: ABAStepCoin, Round: 2, Value: 0, Instances: []uint32{1}},
		}},
	}
	frames := make([][]byte, 0, len(msgs)+4)
	for _, m := range msgs {
		frames = append(frames, Encode(m))
	}
	frames = append(frames,
		Encode(&Batch{Frames: [][]byte{frames[0], frames[1], frames[2]}}),
		[]byte{},              // empty frame
		[]byte{0xFF, 1, 2, 3}, // unknown kind
		Encode(msgs[0])[:3],   // truncated
	)
	return frames
}

// FuzzDecode checks the decoder's contract on arbitrary bytes: it never
// panics, and whatever it accepts re-encodes to the identical frame
// (encoding is canonical, decoding is strict).
func FuzzDecode(f *testing.F) {
	for _, frame := range fuzzSeedFrames() {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("decode error not wrapping ErrMalformed: %v", err)
			}
			return
		}
		re := Encode(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// acsSeedFrames builds the seed frames for the ACS-engine message kinds
// (RBC ECHO/READY and grouped ABA traffic) plus malformed variants — the
// in-code half of the FuzzACSDecode corpus.
func acsSeedFrames() [][]byte {
	all := fuzzSeedFrames()
	echo, ready, aba := all[7], all[8], all[9]
	return [][]byte{
		echo, ready, aba,
		Encode(&RBCEcho{Sender: 2, Broadcaster: 0}), // empty proposal (ConsensusLiar)
		Encode(&ABA{Sender: 0, Groups: []ABAGroup{{Step: ABAStepDecide, Round: 0, Value: 0, Instances: []uint32{3}}}}),
		{byte(KindABA)},                       // bare kind, no body
		ready[:len(ready)-7],                  // truncated hash
		append(aba[:len(aba):len(aba)], 0x00), // trailing byte
	}
}

// FuzzACSDecode pins the decoder contract for the ACS engine's wire frames
// specifically: arbitrary bytes never panic the decoder, and any accepted
// RBC-ECHO, RBC-READY or ABA frame re-encodes byte-identically (canonical
// encoding — the ACS payload hash depends on it).
func FuzzACSDecode(f *testing.F) {
	for _, frame := range acsSeedFrames() {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("decode error not wrapping ErrMalformed: %v", err)
			}
			return
		}
		switch m.(type) {
		case *RBCEcho, *RBCReady, *ABA:
		default:
			return // other kinds are FuzzDecode's job
		}
		re := Encode(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzSplitBatch checks the transport unbatching path: SplitBatch never
// panics, every frame it returns is a non-empty non-batch frame, and the
// split re-assembles into the identical batch envelope.
func FuzzSplitBatch(f *testing.F) {
	seeds := fuzzSeedFrames()
	f.Add(Encode(&Batch{Frames: [][]byte{seeds[0], seeds[1]}}))
	f.Add(Encode(&Batch{Frames: [][]byte{seeds[2]}}))
	f.Add(Encode(&Batch{}))
	f.Add([]byte{byte(KindBatch), BatchVersion, 0, 0, 0, 2}) // truncated count
	f.Add(seeds[0])                                          // not a batch
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, err := SplitBatch(data)
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("split error not wrapping ErrMalformed: %v", err)
			}
			return
		}
		for i, frame := range frames {
			if len(frame) == 0 {
				t.Fatalf("frame %d is empty", i)
			}
			if IsBatchFrame(frame) {
				t.Fatalf("frame %d is a nested batch", i)
			}
		}
		if len(frames) > MaxBatchFrames {
			t.Fatalf("accepted %d frames, cap is %d", len(frames), MaxBatchFrames)
		}
		re := Encode(&Batch{Frames: frames})
		if !bytes.Equal(re, data) {
			t.Fatalf("split/re-encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}
