// Package wire defines the binary message format exchanged between Vote
// Collector nodes: the voting protocol messages of §III-E (ENDORSE,
// ENDORSEMENT, VOTE_P), the vote-set-consensus messages (ANNOUNCE,
// RECOVER-REQUEST, RECOVER-RESPONSE), the batched binary-consensus
// payloads, and the Batch envelope that coalesces many protocol messages
// into one frame for the high-throughput transport pipeline (DESIGN.md,
// "Batched message pipeline"). Encoding is hand-rolled: these messages are
// the hot path of the system, mirroring the paper's use of protocol buffers
// over Netty.
//
// Every frame is Kind (1 byte) || body. Deserialization is strict: trailing
// bytes, truncation and oversized counts are errors.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind identifies the message type of a frame.
type Kind uint8

// Message kinds. Start at 1 so the zero value is invalid.
const (
	KindEndorse Kind = iota + 1
	KindEndorsement
	KindVoteP
	KindAnnounce
	KindRecoverRequest
	KindRecoverResponse
	KindConsensus
	KindBatch
	KindVSCFinal
	KindRBCEcho
	KindRBCReady
	KindABA
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindEndorse:
		return "ENDORSE"
	case KindEndorsement:
		return "ENDORSEMENT"
	case KindVoteP:
		return "VOTE_P"
	case KindAnnounce:
		return "ANNOUNCE"
	case KindRecoverRequest:
		return "RECOVER-REQUEST"
	case KindRecoverResponse:
		return "RECOVER-RESPONSE"
	case KindConsensus:
		return "CONSENSUS"
	case KindBatch:
		return "BATCH"
	case KindVSCFinal:
		return "VSC-FINAL"
	case KindRBCEcho:
		return "RBC-ECHO"
	case KindRBCReady:
		return "RBC-READY"
	case KindABA:
		return "ABA"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Limits protecting decoders from hostile inputs.
const (
	maxBytesLen = 1 << 20 // single byte-string field
	maxCount    = 1 << 22 // collection sizes
)

// ErrMalformed is wrapped by all decoding errors.
var ErrMalformed = errors.New("wire: malformed message")

// Message is implemented by every protocol message.
type Message interface {
	Kind() Kind
	appendBody(dst []byte) []byte
}

// Encode serializes a message to a framed byte slice.
func Encode(m Message) []byte {
	return m.appendBody([]byte{byte(m.Kind())})
}

// Decode parses a framed message.
func Decode(frame []byte) (Message, error) {
	if len(frame) < 1 {
		return nil, fmt.Errorf("%w: empty frame", ErrMalformed)
	}
	r := &reader{buf: frame[1:]}
	var m Message
	switch Kind(frame[0]) {
	case KindEndorse:
		m = decodeEndorse(r)
	case KindEndorsement:
		m = decodeEndorsement(r)
	case KindVoteP:
		m = decodeVoteP(r)
	case KindAnnounce:
		m = decodeAnnounce(r)
	case KindRecoverRequest:
		m = decodeRecoverRequest(r)
	case KindRecoverResponse:
		m = decodeRecoverResponse(r)
	case KindConsensus:
		m = decodeConsensus(r)
	case KindBatch:
		m = decodeBatch(r)
	case KindVSCFinal:
		m = decodeVSCFinal(r)
	case KindRBCEcho:
		m = decodeRBCEcho(r)
	case KindRBCReady:
		m = decodeRBCReady(r)
	case KindABA:
		m = decodeABA(r)
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrMalformed, frame[0])
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.buf))
	}
	return m, nil
}

// --- primitives -----------------------------------------------------------

type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s", ErrMalformed, what)
	}
}

func (r *reader) u8(what string) uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 1 {
		r.fail(what)
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *reader) u16(what string) uint16 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 2 {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf)
	r.buf = r.buf[2:]
	return v
}

func (r *reader) u32(what string) uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 4 {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

func (r *reader) bytes(what string) []byte {
	n := r.u32(what)
	if r.err != nil {
		return nil
	}
	if n > maxBytesLen || int(n) > len(r.buf) {
		r.fail(what)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[:n])
	r.buf = r.buf[n:]
	return out
}

func (r *reader) count(what string) int {
	n := r.u32(what)
	if r.err != nil {
		return 0
	}
	if n > maxCount {
		r.fail(what + " count")
		return 0
	}
	return int(n)
}

func appendU16(dst []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }

func appendBytes(dst, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b))) //nolint:gosec // bounded by callers
	return append(dst, b...)
}

// --- voting protocol messages ---------------------------------------------

// Endorse asks every VC node to endorse (serial, vote-code) as the unique
// code for the ballot.
type Endorse struct {
	Serial uint64
	Code   []byte
}

// Kind implements Message.
func (*Endorse) Kind() Kind { return KindEndorse }

func (m *Endorse) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.Serial)
	return appendBytes(dst, m.Code)
}

func decodeEndorse(r *reader) *Endorse {
	return &Endorse{Serial: r.u64("serial"), Code: r.bytes("code")}
}

// Endorsement is a VC node's signature endorsing (serial, vote-code).
type Endorsement struct {
	Serial uint64
	Code   []byte
	Signer uint16 // VC node index
	Sig    []byte
}

// Kind implements Message.
func (*Endorsement) Kind() Kind { return KindEndorsement }

func (m *Endorsement) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.Serial)
	dst = appendBytes(dst, m.Code)
	dst = appendU16(dst, m.Signer)
	return appendBytes(dst, m.Sig)
}

func decodeEndorsement(r *reader) *Endorsement {
	return &Endorsement{
		Serial: r.u64("serial"),
		Code:   r.bytes("code"),
		Signer: r.u16("signer"),
		Sig:    r.bytes("sig"),
	}
}

// SigEntry is one endorsement signature inside a uniqueness certificate.
type SigEntry struct {
	Signer uint16
	Sig    []byte
}

// UCert is the uniqueness certificate: Nv-fv endorsement signatures for the
// same (serial, vote-code). Its existence guarantees no other vote code can
// be certified for the ballot.
type UCert struct {
	Serial uint64
	Code   []byte
	Sigs   []SigEntry
}

func appendUCert(dst []byte, u *UCert) []byte {
	dst = appendU64(dst, u.Serial)
	dst = appendBytes(dst, u.Code)
	dst = appendU32(dst, uint32(len(u.Sigs))) //nolint:gosec // protocol-bounded
	for _, s := range u.Sigs {
		dst = appendU16(dst, s.Signer)
		dst = appendBytes(dst, s.Sig)
	}
	return dst
}

func decodeUCert(r *reader) UCert {
	u := UCert{Serial: r.u64("ucert serial"), Code: r.bytes("ucert code")}
	n := r.count("ucert sigs")
	if r.err != nil {
		return u
	}
	u.Sigs = make([]SigEntry, 0, n)
	for i := 0; i < n; i++ {
		u.Sigs = append(u.Sigs, SigEntry{Signer: r.u16("sig signer"), Sig: r.bytes("sig bytes")})
	}
	return u
}

// MarshalUCert serializes a certificate standalone — the journal and
// snapshot records of the VC persistence layer embed certificates outside
// any protocol frame.
func MarshalUCert(u *UCert) []byte {
	return appendUCert(nil, u)
}

// UnmarshalUCert parses a standalone certificate produced by MarshalUCert,
// returning the unconsumed rest of buf.
func UnmarshalUCert(buf []byte) (UCert, []byte, error) {
	r := &reader{buf: buf}
	u := decodeUCert(r)
	if r.err != nil {
		return UCert{}, nil, r.err
	}
	return u, r.buf, nil
}

// VoteP discloses a node's receipt share for a certified (serial, code),
// carrying the UCERT so receivers can join without having seen the ENDORSE
// round.
type VoteP struct {
	Serial     uint64
	Code       []byte
	ShareIndex uint32
	ShareValue []byte // 32-byte scalar
	ShareSig   []byte // EA signature binding (serial, line, index, value)
	Cert       UCert
}

// Kind implements Message.
func (*VoteP) Kind() Kind { return KindVoteP }

func (m *VoteP) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.Serial)
	dst = appendBytes(dst, m.Code)
	dst = appendU32(dst, m.ShareIndex)
	dst = appendBytes(dst, m.ShareValue)
	dst = appendBytes(dst, m.ShareSig)
	return appendUCert(dst, &m.Cert)
}

func decodeVoteP(r *reader) *VoteP {
	return &VoteP{
		Serial:     r.u64("serial"),
		Code:       r.bytes("code"),
		ShareIndex: r.u32("share index"),
		ShareValue: r.bytes("share value"),
		ShareSig:   r.bytes("share sig"),
		Cert:       decodeUCert(r),
	}
}

// --- vote set consensus messages ------------------------------------------

// AnnounceEntry reports one ballot's certified vote code.
type AnnounceEntry struct {
	Serial uint64
	Code   []byte
	Cert   UCert
}

// Announce carries a node's complete set of known certified codes at
// election end (entries for voted ballots only; all other ballots are
// implicitly announced as null, batching the paper's per-ballot ANNOUNCE).
type Announce struct {
	Sender  uint16
	Entries []AnnounceEntry
}

// Kind implements Message.
func (*Announce) Kind() Kind { return KindAnnounce }

func (m *Announce) appendBody(dst []byte) []byte {
	dst = appendU16(dst, m.Sender)
	dst = appendU32(dst, uint32(len(m.Entries))) //nolint:gosec // protocol-bounded
	for i := range m.Entries {
		e := &m.Entries[i]
		dst = appendU64(dst, e.Serial)
		dst = appendBytes(dst, e.Code)
		dst = appendUCert(dst, &e.Cert)
	}
	return dst
}

func decodeAnnounce(r *reader) *Announce {
	m := &Announce{Sender: r.u16("sender")}
	n := r.count("entries")
	if r.err != nil {
		return m
	}
	m.Entries = make([]AnnounceEntry, 0, n)
	for i := 0; i < n; i++ {
		m.Entries = append(m.Entries, AnnounceEntry{
			Serial: r.u64("entry serial"),
			Code:   r.bytes("entry code"),
			Cert:   decodeUCert(r),
		})
	}
	return m
}

// RecoverRequest asks peers for the certified codes of ballots that decided
// "voted" in consensus but whose code is locally unknown (§III-E step 5b).
type RecoverRequest struct {
	Serials []uint64
}

// Kind implements Message.
func (*RecoverRequest) Kind() Kind { return KindRecoverRequest }

func (m *RecoverRequest) appendBody(dst []byte) []byte {
	dst = appendU32(dst, uint32(len(m.Serials))) //nolint:gosec // protocol-bounded
	for _, s := range m.Serials {
		dst = appendU64(dst, s)
	}
	return dst
}

func decodeRecoverRequest(r *reader) *RecoverRequest {
	n := r.count("serials")
	if r.err != nil {
		return &RecoverRequest{}
	}
	m := &RecoverRequest{Serials: make([]uint64, 0, n)}
	for i := 0; i < n; i++ {
		m.Serials = append(m.Serials, r.u64("serial"))
	}
	return m
}

// RecoverResponse answers a RecoverRequest with certified codes.
type RecoverResponse struct {
	Entries []AnnounceEntry
}

// Kind implements Message.
func (*RecoverResponse) Kind() Kind { return KindRecoverResponse }

func (m *RecoverResponse) appendBody(dst []byte) []byte {
	dst = appendU32(dst, uint32(len(m.Entries))) //nolint:gosec // protocol-bounded
	for i := range m.Entries {
		e := &m.Entries[i]
		dst = appendU64(dst, e.Serial)
		dst = appendBytes(dst, e.Code)
		dst = appendUCert(dst, &e.Cert)
	}
	return dst
}

func decodeRecoverResponse(r *reader) *RecoverResponse {
	n := r.count("entries")
	if r.err != nil {
		return &RecoverResponse{}
	}
	m := &RecoverResponse{Entries: make([]AnnounceEntry, 0, n)}
	for i := 0; i < n; i++ {
		m.Entries = append(m.Entries, AnnounceEntry{
			Serial: r.u64("entry serial"),
			Code:   r.bytes("entry code"),
			Cert:   decodeUCert(r),
		})
	}
	return m
}

// VSCEntry is one ⟨serial, code⟩ tuple of a final agreed vote set.
type VSCEntry struct {
	Serial uint64
	Code   []byte
}

// VSCFinal carries a node's completed vote-set-consensus result, signed with
// its vote-set signature. It is the consensus-phase recovery channel: a node
// that restarted mid-consensus re-announces, and peers that already finished
// reply with their final set; fv+1 matching signed sets contain one from an
// honest node, so the agreed set can be adopted without re-running the
// binary-consensus instances the restarted node slept through.
type VSCFinal struct {
	Sender  uint16
	Entries []VSCEntry
	Sig     []byte
}

// Kind implements Message.
func (*VSCFinal) Kind() Kind { return KindVSCFinal }

func (m *VSCFinal) appendBody(dst []byte) []byte {
	dst = appendU16(dst, m.Sender)
	dst = appendU32(dst, uint32(len(m.Entries))) //nolint:gosec // protocol-bounded
	for i := range m.Entries {
		dst = appendU64(dst, m.Entries[i].Serial)
		dst = appendBytes(dst, m.Entries[i].Code)
	}
	return appendBytes(dst, m.Sig)
}

func decodeVSCFinal(r *reader) *VSCFinal {
	m := &VSCFinal{Sender: r.u16("sender")}
	n := r.count("entries")
	if r.err != nil {
		return m
	}
	m.Entries = make([]VSCEntry, 0, n)
	for i := 0; i < n; i++ {
		m.Entries = append(m.Entries, VSCEntry{Serial: r.u64("entry serial"), Code: r.bytes("entry code")})
	}
	m.Sig = r.bytes("sig")
	return m
}

// --- batched binary consensus ---------------------------------------------

// Consensus step identifiers.
const (
	StepBVal   uint8 = 1
	StepAux    uint8 = 2
	StepDecide uint8 = 3
)

// ConsensusGroup aggregates one (step, round, value) tuple over many
// consensus instances, identified by their uint32 indices.
type ConsensusGroup struct {
	Step      uint8
	Round     uint16
	Value     uint8
	Instances []uint32
}

// Consensus is the batched binary-consensus message: all the per-instance
// protocol messages a node emits in one flush, grouped for network
// efficiency (the paper's "binary consensus in batches of arbitrary size").
type Consensus struct {
	Sender uint16
	Groups []ConsensusGroup
}

// Kind implements Message.
func (*Consensus) Kind() Kind { return KindConsensus }

func (m *Consensus) appendBody(dst []byte) []byte {
	dst = appendU16(dst, m.Sender)
	dst = appendU32(dst, uint32(len(m.Groups))) //nolint:gosec // protocol-bounded
	for i := range m.Groups {
		g := &m.Groups[i]
		dst = append(dst, g.Step, byte(g.Value))
		dst = appendU16(dst, g.Round)
		dst = appendU32(dst, uint32(len(g.Instances))) //nolint:gosec // protocol-bounded
		for _, inst := range g.Instances {
			dst = appendU32(dst, inst)
		}
	}
	return dst
}

func decodeConsensus(r *reader) *Consensus {
	m := &Consensus{Sender: r.u16("sender")}
	n := r.count("groups")
	if r.err != nil {
		return m
	}
	m.Groups = make([]ConsensusGroup, 0, n)
	for i := 0; i < n; i++ {
		g := ConsensusGroup{
			Step:  r.u8("step"),
			Value: r.u8("value"),
			Round: r.u16("round"),
		}
		cnt := r.count("instances")
		if r.err != nil {
			return m
		}
		g.Instances = make([]uint32, 0, cnt)
		for j := 0; j < cnt; j++ {
			g.Instances = append(g.Instances, r.u32("instance"))
		}
		m.Groups = append(m.Groups, g)
	}
	return m
}

// --- ACS engine messages (reliable broadcast + ABA) -------------------------

// RBCEcho is the ECHO step of the Bracha reliable broadcast the ACS engine
// uses to disperse each node's candidate vote set. The broadcaster's own
// ECHO (Sender == Broadcaster) doubles as the SEND step: carrying the full
// entry payload in every ECHO costs one extra fan-out over hash-based
// echoing but removes the payload-fetch round a hash echo would need.
type RBCEcho struct {
	Sender      uint16
	Broadcaster uint16
	Entries     []AnnounceEntry
}

// Kind implements Message.
func (*RBCEcho) Kind() Kind { return KindRBCEcho }

func (m *RBCEcho) appendBody(dst []byte) []byte {
	dst = appendU16(dst, m.Sender)
	dst = appendU16(dst, m.Broadcaster)
	dst = appendU32(dst, uint32(len(m.Entries))) //nolint:gosec // protocol-bounded
	for i := range m.Entries {
		e := &m.Entries[i]
		dst = appendU64(dst, e.Serial)
		dst = appendBytes(dst, e.Code)
		dst = appendUCert(dst, &e.Cert)
	}
	return dst
}

func decodeRBCEcho(r *reader) *RBCEcho {
	m := &RBCEcho{Sender: r.u16("sender"), Broadcaster: r.u16("broadcaster")}
	n := r.count("entries")
	if r.err != nil {
		return m
	}
	m.Entries = make([]AnnounceEntry, 0, n)
	for i := 0; i < n; i++ {
		m.Entries = append(m.Entries, AnnounceEntry{
			Serial: r.u64("entry serial"),
			Code:   r.bytes("entry code"),
			Cert:   decodeUCert(r),
		})
	}
	return m
}

// RBCReady is the READY step of the Bracha reliable broadcast: a vote that
// the payload hashing to Hash is the broadcaster's unique proposal.
type RBCReady struct {
	Sender      uint16
	Broadcaster uint16
	Hash        []byte
}

// Kind implements Message.
func (*RBCReady) Kind() Kind { return KindRBCReady }

func (m *RBCReady) appendBody(dst []byte) []byte {
	dst = appendU16(dst, m.Sender)
	dst = appendU16(dst, m.Broadcaster)
	return appendBytes(dst, m.Hash)
}

func decodeRBCReady(r *reader) *RBCReady {
	return &RBCReady{
		Sender:      r.u16("sender"),
		Broadcaster: r.u16("broadcaster"),
		Hash:        r.bytes("hash"),
	}
}

// ABA step identifiers. EST/AUX mirror the MMR BVAL/AUX steps; COIN is the
// per-round shared-coin exchange and DECIDE the Bracha termination gadget.
const (
	ABAStepEst    uint8 = 1
	ABAStepAux    uint8 = 2
	ABAStepCoin   uint8 = 3
	ABAStepDecide uint8 = 4
)

// ABAGroup aggregates one (step, round, value) tuple over many ABA
// instances, identified by their broadcaster indices.
type ABAGroup struct {
	Step      uint8
	Round     uint16
	Value     uint8
	Instances []uint32
}

// ABA is the batched binary-agreement message of the ACS engine: one
// instance per broadcaster, flushed and grouped exactly like the interlocked
// engine's Consensus frames so both ride the same Batch envelope.
type ABA struct {
	Sender uint16
	Groups []ABAGroup
}

// Kind implements Message.
func (*ABA) Kind() Kind { return KindABA }

func (m *ABA) appendBody(dst []byte) []byte {
	dst = appendU16(dst, m.Sender)
	dst = appendU32(dst, uint32(len(m.Groups))) //nolint:gosec // protocol-bounded
	for i := range m.Groups {
		g := &m.Groups[i]
		dst = append(dst, g.Step, g.Value)
		dst = appendU16(dst, g.Round)
		dst = appendU32(dst, uint32(len(g.Instances))) //nolint:gosec // protocol-bounded
		for _, inst := range g.Instances {
			dst = appendU32(dst, inst)
		}
	}
	return dst
}

func decodeABA(r *reader) *ABA {
	m := &ABA{Sender: r.u16("sender")}
	n := r.count("groups")
	if r.err != nil {
		return m
	}
	m.Groups = make([]ABAGroup, 0, n)
	for i := 0; i < n; i++ {
		g := ABAGroup{
			Step:  r.u8("step"),
			Value: r.u8("value"),
			Round: r.u16("round"),
		}
		cnt := r.count("instances")
		if r.err != nil {
			return m
		}
		g.Instances = make([]uint32, 0, cnt)
		for j := 0; j < cnt; j++ {
			g.Instances = append(g.Instances, r.u32("instance"))
		}
		m.Groups = append(m.Groups, g)
	}
	return m
}
