package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	frame := Encode(m)
	got, err := Decode(frame)
	if err != nil {
		t.Fatalf("decode %s: %v", m.Kind(), err)
	}
	if got.Kind() != m.Kind() {
		t.Fatalf("kind changed: %v -> %v", m.Kind(), got.Kind())
	}
	return got
}

func sampleUCert() UCert {
	return UCert{
		Serial: 42,
		Code:   bytes.Repeat([]byte{0xaa}, 20),
		Sigs: []SigEntry{
			{Signer: 0, Sig: bytes.Repeat([]byte{1}, 64)},
			{Signer: 2, Sig: bytes.Repeat([]byte{2}, 64)},
			{Signer: 3, Sig: bytes.Repeat([]byte{3}, 64)},
		},
	}
}

func TestEndorseRoundTrip(t *testing.T) {
	m := &Endorse{Serial: 7, Code: []byte{1, 2, 3}}
	got := roundTrip(t, m).(*Endorse)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v want %+v", got, m)
	}
}

func TestEndorsementRoundTrip(t *testing.T) {
	m := &Endorsement{Serial: 9, Code: []byte{5}, Signer: 3, Sig: bytes.Repeat([]byte{7}, 64)}
	got := roundTrip(t, m).(*Endorsement)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v want %+v", got, m)
	}
}

func TestVotePRoundTrip(t *testing.T) {
	m := &VoteP{
		Serial:     42,
		Code:       bytes.Repeat([]byte{0xaa}, 20),
		ShareIndex: 2,
		ShareValue: bytes.Repeat([]byte{0xbb}, 32),
		ShareSig:   bytes.Repeat([]byte{0xcc}, 64),
		Cert:       sampleUCert(),
	}
	got := roundTrip(t, m).(*VoteP)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v want %+v", got, m)
	}
}

func TestAnnounceRoundTrip(t *testing.T) {
	m := &Announce{
		Sender: 1,
		Entries: []AnnounceEntry{
			{Serial: 1, Code: []byte{1}, Cert: sampleUCert()},
			{Serial: 2, Code: []byte{2}, Cert: sampleUCert()},
		},
	}
	got := roundTrip(t, m).(*Announce)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v want %+v", got, m)
	}
}

func TestAnnounceEmptyRoundTrip(t *testing.T) {
	m := &Announce{Sender: 3}
	got := roundTrip(t, m).(*Announce)
	if got.Sender != 3 || len(got.Entries) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestRecoverRequestRoundTrip(t *testing.T) {
	m := &RecoverRequest{Serials: []uint64{1, 99, 1 << 40}}
	got := roundTrip(t, m).(*RecoverRequest)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v want %+v", got, m)
	}
}

func TestRecoverResponseRoundTrip(t *testing.T) {
	m := &RecoverResponse{Entries: []AnnounceEntry{{Serial: 5, Code: []byte{9}, Cert: sampleUCert()}}}
	got := roundTrip(t, m).(*RecoverResponse)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v want %+v", got, m)
	}
}

func TestVSCFinalRoundTrip(t *testing.T) {
	m := &VSCFinal{
		Sender: 2,
		Entries: []VSCEntry{
			{Serial: 1, Code: []byte{1, 2, 3}},
			{Serial: 9, Code: bytes.Repeat([]byte{0xee}, 20)},
		},
		Sig: bytes.Repeat([]byte{5}, 64),
	}
	got := roundTrip(t, m).(*VSCFinal)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v want %+v", got, m)
	}
	// Empty set (a node that certified nothing still answers).
	empty := &VSCFinal{Sender: 0, Sig: bytes.Repeat([]byte{6}, 64)}
	got = roundTrip(t, empty).(*VSCFinal)
	if got.Sender != 0 || len(got.Entries) != 0 || !bytes.Equal(got.Sig, empty.Sig) {
		t.Fatalf("empty round trip: %+v", got)
	}
}

func TestConsensusRoundTrip(t *testing.T) {
	m := &Consensus{
		Sender: 2,
		Groups: []ConsensusGroup{
			{Step: StepBVal, Round: 1, Value: 0, Instances: []uint32{0, 5, 100000}},
			{Step: StepAux, Round: 3, Value: 1, Instances: []uint32{7}},
			{Step: StepDecide, Round: 2, Value: 1, Instances: []uint32{}},
		},
	}
	got := roundTrip(t, m).(*Consensus)
	if got.Sender != m.Sender || len(got.Groups) != 3 {
		t.Fatalf("got %+v", got)
	}
	for i := range m.Groups {
		if got.Groups[i].Step != m.Groups[i].Step ||
			got.Groups[i].Round != m.Groups[i].Round ||
			got.Groups[i].Value != m.Groups[i].Value ||
			len(got.Groups[i].Instances) != len(m.Groups[i].Instances) {
			t.Fatalf("group %d mismatch: %+v vs %+v", i, got.Groups[i], m.Groups[i])
		}
	}
}

func TestDecodeRejectsEmpty(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty frame must fail")
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	if _, err := Decode([]byte{0xff, 1, 2}); err == nil {
		t.Fatal("unknown kind must fail")
	}
	if _, err := Decode([]byte{0}); err == nil {
		t.Fatal("kind 0 must fail")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	m := &VoteP{
		Serial:     42,
		Code:       bytes.Repeat([]byte{0xaa}, 20),
		ShareIndex: 2,
		ShareValue: bytes.Repeat([]byte{0xbb}, 32),
		ShareSig:   bytes.Repeat([]byte{0xcc}, 64),
		Cert:       sampleUCert(),
	}
	frame := Encode(m)
	for _, cut := range []int{1, 5, len(frame) / 2, len(frame) - 1} {
		if _, err := Decode(frame[:cut]); err == nil {
			t.Fatalf("truncation at %d must fail", cut)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	frame := Encode(&Endorse{Serial: 1, Code: []byte{1}})
	if _, err := Decode(append(frame, 0)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
}

func TestDecodeRejectsHugeCounts(t *testing.T) {
	// Claim 2^30 announce entries with no body.
	frame := []byte{byte(KindAnnounce), 0, 1, 0x40, 0, 0, 0}
	if _, err := Decode(frame); err == nil {
		t.Fatal("oversized count must fail")
	}
}

func TestDecodeFuzzNoPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEndorseRoundTrip(t *testing.T) {
	f := func(serial uint64, code []byte) bool {
		if len(code) > 1024 {
			code = code[:1024]
		}
		m := &Endorse{Serial: serial, Code: code}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		e := got.(*Endorse)
		return e.Serial == serial && bytes.Equal(e.Code, code)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindEndorse, KindEndorsement, KindVoteP, KindAnnounce,
		KindRecoverRequest, KindRecoverResponse, KindConsensus, KindVSCFinal, Kind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("kind %d has empty string", k)
		}
	}
}

func BenchmarkEncodeVoteP(b *testing.B) {
	m := &VoteP{
		Serial:     42,
		Code:       bytes.Repeat([]byte{0xaa}, 20),
		ShareIndex: 2,
		ShareValue: bytes.Repeat([]byte{0xbb}, 32),
		ShareSig:   bytes.Repeat([]byte{0xcc}, 64),
		Cert:       sampleUCert(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
}

func BenchmarkDecodeVoteP(b *testing.B) {
	frame := Encode(&VoteP{
		Serial:     42,
		Code:       bytes.Repeat([]byte{0xaa}, 20),
		ShareIndex: 2,
		ShareValue: bytes.Repeat([]byte{0xbb}, 32),
		ShareSig:   bytes.Repeat([]byte{0xcc}, 64),
		Cert:       sampleUCert(),
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
